//! Recall@K — the accuracy metric of the evaluation.

use wknng_data::Neighbor;

/// Fraction of true K-nearest neighbors recovered by the approximate graph,
/// averaged over all points: `|approx ∩ truth| / |truth|`.
///
/// Matching is by neighbor **index**; distances are ignored (two methods may
/// report the same neighbor with differently-rounded distances).
pub fn recall(approx: &[Vec<Neighbor>], truth: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(approx.len(), truth.len(), "graphs must cover the same points");
    let mut hit = 0usize;
    let mut total = 0usize;
    for (a, t) in approx.iter().zip(truth) {
        total += t.len();
        for nb in t {
            if a.iter().any(|x| x.index == nb.index) {
                hit += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f64 / total as f64
    }
}

/// Mean distance error: average over points of
/// `(sum approx dists − sum true dists) / (1 + sum true dists)` — a
/// complementary quality signal that catches graphs which find *near* but
/// not *nearest* neighbors.
pub fn mean_distance_ratio(approx: &[Vec<Neighbor>], truth: &[Vec<Neighbor>]) -> f64 {
    assert_eq!(approx.len(), truth.len());
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for (a, t) in approx.iter().zip(truth) {
        if t.is_empty() {
            continue;
        }
        let ta: f64 = t.iter().map(|n| n.dist as f64).sum();
        let aa: f64 = a.iter().take(t.len()).map(|n| n.dist as f64).sum();
        acc += (aa - ta) / (1.0 + ta);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(i: u32, d: f32) -> Neighbor {
        Neighbor::new(i, d)
    }

    #[test]
    fn perfect_recall_is_one() {
        let t = vec![vec![nb(1, 1.0), nb(2, 2.0)], vec![nb(0, 1.0)]];
        assert_eq!(recall(&t, &t), 1.0);
    }

    #[test]
    fn recall_counts_partial_overlap() {
        let truth = vec![vec![nb(1, 1.0), nb(2, 2.0)], vec![nb(0, 1.0), nb(2, 3.0)]];
        let approx = vec![vec![nb(1, 1.0), nb(9, 9.0)], vec![nb(2, 3.0), nb(7, 4.0)]];
        assert!((recall(&approx, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_is_trivially_recalled() {
        let truth: Vec<Vec<Neighbor>> = vec![vec![], vec![]];
        let approx = vec![vec![nb(1, 1.0)], vec![]];
        assert_eq!(recall(&approx, &truth), 1.0);
    }

    #[test]
    #[should_panic(expected = "same points")]
    fn mismatched_lengths_panic() {
        let _ = recall(&[vec![]], &[vec![], vec![]]);
    }

    #[test]
    fn distance_ratio_zero_when_exact() {
        let t = vec![vec![nb(1, 1.0), nb(2, 2.0)]];
        assert_eq!(mean_distance_ratio(&t, &t), 0.0);
    }

    #[test]
    fn distance_ratio_positive_when_worse() {
        let truth = vec![vec![nb(1, 1.0)]];
        let approx = vec![vec![nb(3, 2.0)]];
        assert!(mean_distance_ratio(&approx, &truth) > 0.0);
    }
}
