//! Incremental graph mutation: add and remove points of a built K-NN graph
//! without rebuilding the forest.
//!
//! Each new point is located with a greedy graph search over the current
//! graph (the HNSW-style insertion idiom), adopts the search results as its
//! neighbor list, and pushes reverse edges into those neighbors' bounded
//! lists. Deletions are tombstones: the point's list is cleared, every edge
//! pointing at it is removed, and the orphaned slots are patched with the
//! deleted point's former neighbors (the reverse-edge repair NN-descent uses
//! for its local joins).
//!
//! Two refinement modes close the quality gap after a batch:
//!
//! * [`GraphExtender::polish_all`] — one neighbors-of-neighbors pass over
//!   the *whole* graph, O(n·k²). This is what the one-shot [`extend_graph`]
//!   wrapper runs, and the quality reference.
//! * [`GraphExtender::refine`] — the same join restricted to the
//!   neighborhoods the batch actually touched, O(batch·k²) per round. This
//!   is the live-serving path: repeated insert batches stay O(batch), not
//!   O(n).
//!
//! Quality still degrades slowly with the ratio of mutated to original
//! points, so rebuild (or [`GraphExtender::compact`] after heavy deletion)
//! periodically.

use std::collections::BTreeSet;

use wknng_data::{DataError, Neighbor, VectorSet};

use crate::builder::Knng;
use crate::error::KnngError;
use crate::heap::KnnList;
use crate::search::{search_lists, SearchParams};

/// Result of a graph extension.
#[derive(Debug, Clone, PartialEq)]
pub struct Extended {
    /// The combined point set (originals first, then the new points).
    pub vectors: VectorSet,
    /// The extended graph over the combined set.
    pub graph: Knng,
}

/// Insert `new_points` into `graph` (built over `base`).
///
/// `beam` controls insertion search accuracy (defaults to `4·k` when 0).
/// Deterministic; new points are inserted in order. This is the one-shot
/// cloning path: it copies `base` and runs the full-graph polish pass. For
/// repeated batches against a living graph, keep a [`GraphExtender`] instead
/// — its [`insert_batch`](GraphExtender::insert_batch) +
/// [`refine`](GraphExtender::refine) loop is O(batch) per batch, and its
/// [`polish_all`](GraphExtender::polish_all) reproduces this function's
/// output bit-for-bit.
pub fn extend_graph(
    base: &VectorSet,
    graph: &Knng,
    new_points: &VectorSet,
    beam: usize,
) -> Result<Extended, KnngError> {
    let mut ext = GraphExtender::from_parts(base.clone(), graph.clone(), beam)?;
    ext.insert_batch(new_points)?;
    ext.polish_all();
    let (vectors, graph) = ext.into_parts();
    Ok(Extended { vectors, graph })
}

/// A living K-NN graph that absorbs insert/delete batches in place.
///
/// Owns the point set and the bounded neighbor lists; every mutation keeps a
/// sorted mirror of the lists (`view`) synchronized so insertion searches
/// never rebuild an O(n·k) snapshot — the satellite property that makes
/// repeated batches O(batch).
///
/// Deleted points remain as index placeholders (empty lists, tombstoned
/// coordinates) until [`compact`](GraphExtender::compact) renumbers the
/// survivors; graph searches over a snapshot may still *enter* at a
/// tombstone (entry points are drawn uniformly), so readers that must never
/// surface one filter results against [`deleted`](GraphExtender::is_deleted).
#[derive(Debug, Clone)]
pub struct GraphExtender {
    vectors: VectorSet,
    lists: Vec<KnnList>,
    /// Sorted mirror of `lists`, padded to `vectors.len()` during a batch —
    /// the search snapshot, maintained incrementally.
    view: Vec<Vec<Neighbor>>,
    params: crate::params::WknngParams,
    beam: usize,
    deleted: Vec<bool>,
    deleted_count: usize,
    /// Points whose lists changed since the last refine/polish.
    dirty: BTreeSet<u32>,
}

impl GraphExtender {
    /// Adopt an existing graph built over `base`. `beam` controls insertion
    /// search accuracy (defaults to `4·k` when 0).
    pub fn from_parts(base: VectorSet, graph: Knng, beam: usize) -> Result<Self, KnngError> {
        if graph.len() != base.len() {
            return Err(KnngError::KTooLarge { k: graph.len(), n: base.len() });
        }
        let k = graph.params.k;
        let lists: Vec<KnnList> = graph
            .lists
            .iter()
            .map(|l| {
                let mut h = KnnList::new(k);
                for &nb in l {
                    h.insert(nb);
                }
                h
            })
            .collect();
        let view = lists.iter().map(|h| h.as_slice().to_vec()).collect();
        let n = base.len();
        Ok(GraphExtender {
            vectors: base,
            lists,
            view,
            params: graph.params,
            beam: if beam == 0 { 4 * k } else { beam },
            deleted: vec![false; n],
            deleted_count: 0,
            dirty: BTreeSet::new(),
        })
    }

    /// Number of index slots (live points + tombstones).
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the graph holds no slots at all.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_len(&self) -> usize {
        self.lists.len() - self.deleted_count
    }

    /// Number of tombstoned points.
    pub fn deleted_count(&self) -> usize {
        self.deleted_count
    }

    /// Fraction of slots that are tombstones (0 for an empty graph).
    pub fn tombstone_fraction(&self) -> f64 {
        if self.lists.is_empty() {
            0.0
        } else {
            self.deleted_count as f64 / self.lists.len() as f64
        }
    }

    /// True when `id` is a tombstone.
    pub fn is_deleted(&self, id: u32) -> bool {
        self.deleted.get(id as usize).copied().unwrap_or(false)
    }

    /// The tombstone bitmap, one flag per slot.
    pub fn deleted_flags(&self) -> &[bool] {
        &self.deleted
    }

    /// The current point set (tombstoned rows keep their stale coordinates).
    pub fn vectors(&self) -> &VectorSet {
        &self.vectors
    }

    /// Build parameters of the underlying graph.
    pub fn params(&self) -> crate::params::WknngParams {
        self.params
    }

    /// A sorted-list clone of the current graph.
    pub fn graph(&self) -> Knng {
        let lists = self.lists.iter().map(|h| h.as_slice().to_vec()).collect();
        Knng { lists, params: self.params }
    }

    /// Consume into the point set and graph.
    pub fn into_parts(self) -> (VectorSet, Knng) {
        let lists: Vec<Vec<Neighbor>> = self.lists.into_iter().map(KnnList::into_vec).collect();
        (self.vectors, Knng { lists, params: self.params })
    }

    /// Offer `cand` to `p`'s bounded list, keeping the search mirror and the
    /// dirty set synchronized. Returns whether the list changed.
    fn touch(&mut self, p: u32, cand: Neighbor) -> bool {
        if self.lists[p as usize].insert(cand) {
            self.view[p as usize] = self.lists[p as usize].as_slice().to_vec();
            self.dirty.insert(p);
            true
        } else {
            false
        }
    }

    /// Insert every row of `new_points` as a new graph point, in order.
    /// Returns the assigned ids. O(batch · beam · k), independent of the
    /// graph size beyond the searches themselves.
    ///
    /// The inserted points and every list that received a reverse edge are
    /// queued for the next [`refine`](GraphExtender::refine) /
    /// [`polish_all`](GraphExtender::polish_all).
    pub fn insert_batch(&mut self, new_points: &VectorSet) -> Result<Vec<u32>, KnngError> {
        if self.vectors.dim() != new_points.dim() {
            return Err(KnngError::Data(DataError::DimMismatch {
                got: new_points.dim(),
                want: self.vectors.dim(),
            }));
        }
        let first = self.lists.len();
        self.vectors.append(new_points)?;
        // Pad the search mirror to the combined length: points not inserted
        // yet read as empty lists, exactly like the one-shot snapshot.
        self.view.resize(self.vectors.len(), Vec::new());
        self.deleted.resize(self.vectors.len(), false);

        let k = self.params.k;
        let params = SearchParams { k, beam: self.beam, entries: 4, metric: self.params.metric };
        let search_params = SearchParams { k: params.beam, ..params };

        let mut ids = Vec::with_capacity(new_points.len());
        for i in 0..new_points.len() {
            let id = (first + i) as u32;
            let row = new_points.row(i);
            let (found, _) = search_lists(&self.vectors, &self.view, row, &search_params);
            let mut own = KnnList::new(k);
            for nb in found.iter() {
                if nb.index == id || self.is_deleted(nb.index) {
                    continue; // the query point itself, or a tombstone
                }
                own.insert(*nb);
                // Reverse edge into the found point's bounded list. The
                // search may surface a not-yet-inserted point (its entry
                // points are drawn from the whole combined set); its list
                // does not exist yet, and it will discover `id` itself via
                // its own search or a refinement pass.
                if (nb.index as usize) < self.lists.len() {
                    self.touch(nb.index, Neighbor::new(id, nb.dist));
                }
            }
            self.view[id as usize] = own.as_slice().to_vec();
            self.lists.push(own);
            self.dirty.insert(id);
            ids.push(id);
        }
        Ok(ids)
    }

    /// Tombstone every id in `ids`: clear its list, remove every edge that
    /// points at it, and patch the orphaned slots with the deleted point's
    /// former neighbors (recomputed distances). Idempotent — already-deleted
    /// ids are skipped. Returns the number of points newly deleted.
    ///
    /// One O(n·k) scan per call regardless of batch size, so batch deletes.
    pub fn delete_batch(&mut self, ids: &[u32]) -> Result<usize, KnngError> {
        let n = self.lists.len();
        for &id in ids {
            if id as usize >= n {
                return Err(KnngError::PointOutOfRange { id, n });
            }
        }
        // Capture each victim's surviving former neighbors before clearing:
        // they are the repair candidates for every list that loses an edge.
        let mut newly = Vec::new();
        for &id in ids {
            if !self.deleted[id as usize] {
                self.deleted[id as usize] = true;
                newly.push(id);
            }
        }
        if newly.is_empty() {
            return Ok(0);
        }
        self.deleted_count += newly.len();
        let mut former: Vec<(u32, Vec<u32>)> = Vec::with_capacity(newly.len());
        for &id in &newly {
            let survivors =
                self.lists[id as usize].indices().filter(|&q| !self.deleted[q as usize]).collect();
            former.push((id, survivors));
            self.lists[id as usize] = KnnList::new(self.params.k);
            self.view[id as usize].clear();
            self.dirty.remove(&id);
        }
        let patch = |id: u32| former.iter().find(|(d, _)| *d == id).map(|(_, s)| s.as_slice());

        // One pass over the live lists: drop edges to tombstones, offer the
        // victims' former neighborhoods as replacements.
        let metric = self.params.metric;
        let kern = wknng_data::kernel();
        for p in 0..n {
            if self.deleted[p] {
                continue;
            }
            if !self.lists[p].indices().any(|q| self.deleted[q as usize]) {
                continue;
            }
            let old = std::mem::replace(&mut self.lists[p], KnnList::new(self.params.k));
            let mut candidates: Vec<u32> = Vec::new();
            for nb in old.into_vec() {
                if self.deleted[nb.index as usize] {
                    if let Some(s) = patch(nb.index) {
                        candidates.extend_from_slice(s);
                    }
                } else {
                    self.lists[p].insert(nb);
                }
            }
            let row = self.vectors.row(p);
            for q in candidates {
                if q as usize != p && !self.deleted[q as usize] {
                    let d = kern.eval(metric, row, self.vectors.row(q as usize));
                    self.lists[p].insert(Neighbor::new(q, d));
                }
            }
            self.view[p] = self.lists[p].as_slice().to_vec();
            self.dirty.insert(p as u32);
        }
        Ok(newly.len())
    }

    /// One neighbors-of-neighbors pass over the *whole* graph — the quality
    /// reference, O(n·k²). Clears the dirty set. Reproduces the one-shot
    /// [`extend_graph`] polish bit-for-bit (tombstone guards are inert when
    /// nothing is deleted).
    pub fn polish_all(&mut self) {
        let snapshot: Vec<Vec<u32>> = self.lists.iter().map(|h| h.indices().collect()).collect();
        let kern = wknng_data::kernel();
        for p in 0..self.lists.len() {
            if self.deleted[p] {
                continue;
            }
            let row = self.vectors.row(p);
            for &q in &snapshot[p] {
                for &r in &snapshot[q as usize] {
                    if r as usize != p && !self.deleted[r as usize] {
                        let d = kern.eval(self.params.metric, row, self.vectors.row(r as usize));
                        if self.lists[p].insert(Neighbor::new(r, d)) {
                            self.view[p] = self.lists[p].as_slice().to_vec();
                        }
                    }
                }
            }
        }
        self.dirty.clear();
    }

    /// NN-descent-style local refinement: the polish join restricted to the
    /// dirty set and its direct neighborhoods, `rounds` times. O(touched·k²)
    /// per round — this is what keeps live insert batches O(batch). Edges
    /// propagate symmetrically (both `p → r` and `r → p` are offered), so
    /// original points near an insertion site converge without a full pass.
    pub fn refine(&mut self, rounds: usize) {
        let kern = wknng_data::kernel();
        for _ in 0..rounds {
            let seeds: Vec<u32> = std::mem::take(&mut self.dirty).into_iter().collect();
            if seeds.is_empty() {
                return;
            }
            // Closure: the touched points plus everyone they currently link
            // to — the neighborhoods the batch actually shifted.
            let mut work: BTreeSet<u32> = seeds.iter().copied().collect();
            for &p in &seeds {
                work.extend(self.view[p as usize].iter().map(|nb| nb.index));
            }
            let work: Vec<u32> = work.into_iter().filter(|&p| !self.deleted[p as usize]).collect();
            let snapshot: Vec<Vec<u32>> =
                work.iter().map(|&p| self.lists[p as usize].indices().collect()).collect();
            for (wi, &p) in work.iter().enumerate() {
                for &q in &snapshot[wi] {
                    for nb in self.view[q as usize].clone() {
                        let r = nb.index;
                        if r != p && !self.deleted[r as usize] {
                            let d = kern.eval(
                                self.params.metric,
                                self.vectors.row(p as usize),
                                self.vectors.row(r as usize),
                            );
                            self.touch(p, Neighbor::new(r, d));
                            self.touch(r, Neighbor::new(p, d));
                        }
                    }
                }
            }
        }
        self.dirty.clear();
    }

    /// Drop every tombstone: gather the surviving rows, renumber the graph,
    /// and return the old id of each new slot (`mapping[new] = old`). Ids
    /// are *not* stable across a compaction — callers that expose ids must
    /// translate or republish.
    pub fn compact(&mut self) -> Vec<u32> {
        if self.deleted_count == 0 {
            return (0..self.lists.len() as u32).collect();
        }
        let survivors: Vec<usize> = (0..self.lists.len()).filter(|&p| !self.deleted[p]).collect();
        let mut remap = vec![u32::MAX; self.lists.len()];
        for (new, &old) in survivors.iter().enumerate() {
            remap[old] = new as u32;
        }
        self.vectors = self.vectors.gather(&survivors);
        let old_lists = std::mem::take(&mut self.lists);
        self.lists = survivors
            .iter()
            .map(|&old| {
                let mut h = KnnList::new(self.params.k);
                for nb in old_lists[old].as_slice() {
                    if remap[nb.index as usize] != u32::MAX {
                        h.insert(Neighbor::new(remap[nb.index as usize], nb.dist));
                    }
                }
                h
            })
            .collect();
        self.view = self.lists.iter().map(|h| h.as_slice().to_vec()).collect();
        self.deleted = vec![false; self.lists.len()];
        self.deleted_count = 0;
        self.dirty = std::mem::take(&mut self.dirty)
            .into_iter()
            .filter_map(|p| (remap[p as usize] != u32::MAX).then_some(remap[p as usize]))
            .collect();
        survivors.into_iter().map(|p| p as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WknngBuilder;
    use crate::recall::recall;
    use crate::search::search;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    fn split(n_base: usize, n_new: usize) -> (VectorSet, VectorSet, VectorSet) {
        let all = DatasetSpec::Manifold { n: n_base + n_new, ambient_dim: 24, intrinsic_dim: 4 }
            .generate(77)
            .vectors;
        let base = all.gather(&(0..n_base).collect::<Vec<_>>());
        let new = all.gather(&(n_base..n_base + n_new).collect::<Vec<_>>());
        (all, base, new)
    }

    fn build(base: &VectorSet, k: usize, seed: u64) -> Knng {
        WknngBuilder::new(k)
            .trees(5)
            .leaf_size(24)
            .exploration(1)
            .seed(seed)
            .build_native(base)
            .expect("valid")
            .0
    }

    #[test]
    fn extension_keeps_recall_high() {
        let (all, base, new) = split(400, 60);
        let (graph, _) = WknngBuilder::new(10)
            .trees(6)
            .leaf_size(24)
            .exploration(1)
            .seed(3)
            .build_native(&base)
            .expect("valid");
        let ext = extend_graph(&base, &graph, &new, 0).expect("same dim");
        assert_eq!(ext.vectors.len(), 460);
        assert_eq!(ext.vectors.as_flat(), all.as_flat());
        assert_eq!(ext.graph.len(), 460);

        let truth = exact_knn(&ext.vectors, 10, Metric::SquaredL2);
        let r = recall(&ext.graph.lists, &truth);
        assert!(r > 0.7, "extended-graph recall {r:.3}");
        // The new points themselves must have found good neighborhoods.
        let new_truth = &truth[400..];
        let new_lists = &ext.graph.lists[400..];
        let rn = recall(new_lists, new_truth);
        assert!(rn > 0.7, "new-point recall {rn:.3}");
        // Context: a full rebuild is the quality ceiling; extension must be
        // within striking distance of it.
        let (rebuilt, _) = WknngBuilder::new(10)
            .trees(6)
            .leaf_size(24)
            .exploration(1)
            .seed(3)
            .build_native(&ext.vectors)
            .expect("valid");
        let rr = recall(&rebuilt.lists, &truth);
        assert!(r > rr - 0.2, "extension {r:.3} too far below rebuild {rr:.3}");
    }

    #[test]
    fn graph_shape_invariants_after_extension() {
        let (_, base, new) = split(150, 30);
        let (graph, _) = WknngBuilder::new(6)
            .trees(4)
            .leaf_size(16)
            .exploration(1)
            .seed(4)
            .build_native(&base)
            .expect("valid");
        let ext = extend_graph(&base, &graph, &new, 24).expect("same dim");
        for (p, list) in ext.graph.lists.iter().enumerate() {
            assert!(list.len() <= 6);
            assert!(list.iter().all(|nb| nb.index as usize != p));
            assert!(list.iter().all(|nb| (nb.index as usize) < 180));
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key());
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let base = DatasetSpec::UniformCube { n: 30, dim: 4 }.generate(1).vectors;
        let (graph, _) =
            WknngBuilder::new(3).trees(2).leaf_size(8).build_native(&base).expect("valid");
        let wrong = DatasetSpec::UniformCube { n: 5, dim: 6 }.generate(1).vectors;
        let err = extend_graph(&base, &graph, &wrong, 0).unwrap_err();
        assert_eq!(err, KnngError::Data(DataError::DimMismatch { got: 6, want: 4 }));
        let mut ext = GraphExtender::from_parts(base, graph, 0).unwrap();
        let err = ext.insert_batch(&wrong).unwrap_err();
        assert_eq!(err, KnngError::Data(DataError::DimMismatch { got: 6, want: 4 }));
        assert_eq!(ext.len(), 30, "failed insert leaves the graph untouched");
    }

    #[test]
    fn empty_extension_only_improves_the_graph() {
        let base = DatasetSpec::UniformCube { n: 40, dim: 4 }.generate(2).vectors;
        let (graph, _) =
            WknngBuilder::new(4).trees(2).leaf_size(8).build_native(&base).expect("valid");
        let empty = VectorSet::new(vec![], 4).unwrap();
        let ext = extend_graph(&base, &graph, &empty, 0).expect("same dim");
        assert_eq!(ext.vectors, base);
        // The polish pass may refine lists, never degrade them.
        let truth = exact_knn(&base, 4, Metric::SquaredL2);
        assert!(recall(&ext.graph.lists, &truth) >= recall(&graph.lists, &truth));
    }

    #[test]
    fn extender_with_polish_is_bit_exact_with_chained_extend_graph() {
        let (_, base, new) = split(300, 80);
        let b1 = new.gather(&(0..50).collect::<Vec<_>>());
        let b2 = new.gather(&(50..80).collect::<Vec<_>>());
        let graph = build(&base, 8, 11);

        // Cloning path: two chained one-shot extensions.
        let ext1 = extend_graph(&base, &graph, &b1, 0).unwrap();
        let ext2 = extend_graph(&ext1.vectors, &ext1.graph, &b2, 0).unwrap();

        // In-place path: one extender, two batches, polish after each (the
        // one-shot wrapper polishes per call).
        let mut ext = GraphExtender::from_parts(base, graph, 0).unwrap();
        let ids = ext.insert_batch(&b1).unwrap();
        assert_eq!(ids, (300..350).collect::<Vec<u32>>());
        ext.polish_all();
        ext.insert_batch(&b2).unwrap();
        ext.polish_all();
        let (vectors, live) = ext.into_parts();

        assert_eq!(vectors, ext2.vectors);
        assert_eq!(live.lists, ext2.graph.lists, "in-place path diverged from cloning path");
    }

    #[test]
    fn local_refine_tracks_full_polish_quality() {
        let (_, base, new) = split(400, 40);
        let graph = build(&base, 10, 7);
        let truth_ctx = {
            let mut ext = GraphExtender::from_parts(base.clone(), graph.clone(), 0).unwrap();
            ext.insert_batch(&new).unwrap();
            ext.polish_all();
            ext
        };
        let mut fast = GraphExtender::from_parts(base, graph, 0).unwrap();
        fast.insert_batch(&new).unwrap();
        fast.refine(2);

        let (vecs, polished) = truth_ctx.into_parts();
        let (_, refined) = fast.into_parts();
        let truth = exact_knn(&vecs, 10, Metric::SquaredL2);
        let r_polish = recall(&polished.lists, &truth);
        let r_refine = recall(&refined.lists, &truth);
        assert!(
            r_refine > r_polish - 0.05,
            "local refine {r_refine:.3} too far below full polish {r_polish:.3}"
        );
    }

    #[test]
    fn insert_into_empty_and_degenerate_graphs() {
        // Empty graph: the first batch bootstraps it.
        let empty = VectorSet::new(vec![], 4).unwrap();
        let graph = Knng {
            lists: Vec::new(),
            params: crate::params::WknngParams { k: 3, ..Default::default() },
        };
        let mut ext = GraphExtender::from_parts(empty, graph, 0).unwrap();
        let pts = DatasetSpec::UniformCube { n: 10, dim: 4 }.generate(9).vectors;
        let ids = ext.insert_batch(&pts).unwrap();
        assert_eq!(ids.len(), 10);
        ext.refine(2);
        let (vs, g) = ext.into_parts();
        let truth = exact_knn(&vs, 3, Metric::SquaredL2);
        let r = recall(&g.lists, &truth);
        assert!(r > 0.8, "bootstrap recall {r:.3}");

        // Degenerate single-point graph.
        let one = VectorSet::new(vec![0.0; 4], 4).unwrap();
        let graph = Knng {
            lists: vec![Vec::new()],
            params: crate::params::WknngParams { k: 2, ..Default::default() },
        };
        let mut ext = GraphExtender::from_parts(one, graph, 0).unwrap();
        let two =
            VectorSet::from_rows(&[vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]]).unwrap();
        ext.insert_batch(&two).unwrap();
        ext.refine(2);
        let (_, g) = ext.into_parts();
        assert_eq!(g.len(), 3);
        for (p, list) in g.lists.iter().enumerate() {
            assert!(!list.is_empty(), "point {p} found no neighbors");
            assert!(list.iter().all(|nb| nb.index as usize != p));
        }
    }

    #[test]
    fn duplicate_points_insert_cleanly() {
        let base = DatasetSpec::UniformCube { n: 30, dim: 4 }.generate(5).vectors;
        let graph = build(&base, 4, 5);
        let mut ext = GraphExtender::from_parts(base.clone(), graph, 0).unwrap();
        // Insert exact copies of existing rows: zero distances everywhere.
        let dupes = base.gather(&[0, 1, 2]);
        let ids = ext.insert_batch(&dupes).unwrap();
        assert_eq!(ids, vec![30, 31, 32]);
        ext.refine(2);
        let (_, g) = ext.into_parts();
        for (p, list) in g.lists.iter().enumerate() {
            assert!(list.len() <= 4);
            assert!(list.iter().all(|nb| nb.index as usize != p), "self edge at {p}");
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key(), "unsorted/duplicate at {p}");
            }
        }
        // A duplicate's nearest neighbor is its original, at distance 0.
        assert_eq!(g.lists[30][0].dist, 0.0);
        assert_eq!(g.lists[30][0].index, 0);
    }

    #[test]
    fn delete_patches_orphans_and_reinsert_works() {
        let (_, base, new) = split(200, 20);
        let graph = build(&base, 8, 13);
        let mut ext = GraphExtender::from_parts(base.clone(), graph, 0).unwrap();

        // Delete a block of points; no surviving list may reference them.
        let victims: Vec<u32> = (40..60).collect();
        assert_eq!(ext.delete_batch(&victims).unwrap(), 20);
        assert_eq!(ext.deleted_count(), 20);
        assert_eq!(ext.live_len(), 180);
        // Idempotent: deleting again is a no-op.
        assert_eq!(ext.delete_batch(&victims).unwrap(), 0);
        assert_eq!(ext.deleted_count(), 20);
        // Out-of-range ids are a typed error.
        assert_eq!(
            ext.delete_batch(&[9999]).unwrap_err(),
            KnngError::PointOutOfRange { id: 9999, n: 200 }
        );
        let g = ext.graph();
        for (p, list) in g.lists.iter().enumerate() {
            if victims.contains(&(p as u32)) {
                assert!(list.is_empty(), "tombstone {p} kept edges");
            } else {
                assert!(
                    list.iter().all(|nb| !victims.contains(&nb.index)),
                    "point {p} still references a tombstone"
                );
                assert!(!list.is_empty(), "patching starved point {p}");
            }
        }

        // Delete-then-reinsert: the same coordinates come back under a new
        // id and find their old neighborhood again.
        let back = base.gather(&[40]);
        let ids = ext.insert_batch(&back).unwrap();
        assert_eq!(ids, vec![200]);
        ext.refine(2);
        assert!(!ext.is_deleted(200));
        assert!(ext.is_deleted(40), "the old id stays tombstoned");
        let g = ext.graph();
        assert!(!g.lists[200].is_empty());
        assert!(g.lists[200].iter().all(|nb| !ext.is_deleted(nb.index)));

        // And fresh points keep inserting fine around tombstones.
        ext.insert_batch(&new).unwrap();
        ext.refine(2);
        let truth_set = {
            let mut survivors: Vec<usize> =
                (0..221).filter(|&p| !ext.is_deleted(p as u32)).collect();
            survivors.sort_unstable();
            survivors
        };
        assert_eq!(truth_set.len(), ext.live_len());
    }

    #[test]
    fn compact_renumbers_and_preserves_neighborhoods() {
        let base = DatasetSpec::UniformCube { n: 120, dim: 6 }.generate(21).vectors;
        let graph = build(&base, 6, 17);
        let mut ext = GraphExtender::from_parts(base.clone(), graph, 0).unwrap();
        ext.delete_batch(&(0..30).collect::<Vec<u32>>()).unwrap();
        let mapping = ext.compact();
        assert_eq!(mapping, (30..120).collect::<Vec<u32>>());
        assert_eq!(ext.len(), 90);
        assert_eq!(ext.deleted_count(), 0);
        assert_eq!(ext.tombstone_fraction(), 0.0);
        let (vs, g) = ext.into_parts();
        assert_eq!(vs.len(), 90);
        assert_eq!(vs.row(0), base.row(30));
        for (p, list) in g.lists.iter().enumerate() {
            assert!(list.iter().all(|nb| (nb.index as usize) < 90), "stale id at {p}");
            assert!(list.iter().all(|nb| nb.index as usize != p));
        }
        // Post-compaction searches stay sane.
        let (found, _) =
            search(&vs, &g, base.row(31), &SearchParams { k: 5, ..Default::default() });
        assert_eq!(found[0].index, 1, "row 31 became id 1 and is its own nearest neighbor");
    }
}
