//! Incremental graph extension: add points to a built K-NN graph without
//! rebuilding the forest.
//!
//! Each new point is located with a greedy graph search over the current
//! graph (the HNSW-style insertion idiom), adopts the search results as its
//! neighbor list, and pushes reverse edges into those neighbors' bounded
//! lists. Useful for streaming corpora where a full rebuild per batch is too
//! expensive; quality degrades slowly with the ratio of inserted to original
//! points, so rebuild periodically.

use wknng_data::{Neighbor, VectorSet};

use crate::builder::Knng;
use crate::error::KnngError;
use crate::heap::KnnList;
use crate::search::{search_lists, SearchParams};

/// Result of a graph extension.
#[derive(Debug, Clone, PartialEq)]
pub struct Extended {
    /// The combined point set (originals first, then the new points).
    pub vectors: VectorSet,
    /// The extended graph over the combined set.
    pub graph: Knng,
}

/// Insert `new_points` into `graph` (built over `base`).
///
/// `beam` controls insertion search accuracy (defaults to `4·k` when 0).
/// Deterministic; new points are inserted in order.
pub fn extend_graph(
    base: &VectorSet,
    graph: &Knng,
    new_points: &VectorSet,
    beam: usize,
) -> Result<Extended, KnngError> {
    if base.dim() != new_points.dim() {
        return Err(KnngError::Data(wknng_data::DataError::RaggedBuffer {
            len: new_points.dim(),
            dim: base.dim(),
        }));
    }
    if graph.len() != base.len() {
        return Err(KnngError::KTooLarge { k: graph.len(), n: base.len() });
    }
    let k = graph.params.k;
    let metric = graph.params.metric;

    // Combined coordinates.
    let mut data = base.as_flat().to_vec();
    data.extend_from_slice(new_points.as_flat());
    let vectors = VectorSet::new(data, base.dim())?;

    // Working lists as bounded heaps.
    let mut lists: Vec<KnnList> = graph
        .lists
        .iter()
        .map(|l| {
            let mut h = KnnList::new(k);
            for &nb in l {
                h.insert(nb);
            }
            h
        })
        .collect();

    let params = SearchParams { k, beam: if beam == 0 { 4 * k } else { beam }, entries: 4, metric };

    for i in 0..new_points.len() {
        let id = (base.len() + i) as u32;
        let row = new_points.row(i);
        // Snapshot view for the search (sorted lists), padded with empty
        // lists for the points not inserted yet so it matches the combined
        // coordinate set.
        let mut view: Vec<Vec<Neighbor>> = lists.iter().map(|h| h.as_slice().to_vec()).collect();
        view.resize(vectors.len(), Vec::new());
        let (found, _) =
            search_lists(&vectors, &view, row, &SearchParams { k: params.beam, ..params });
        let mut own = KnnList::new(k);
        for nb in found.iter() {
            if nb.index == id {
                continue; // the query point itself (already in `vectors`)
            }
            own.insert(*nb);
            // Reverse edge into the found point's bounded list. The search
            // may surface a not-yet-inserted point (its entry points are
            // drawn from the whole combined set); its list does not exist
            // yet, and it will discover `id` itself via its own search or
            // the polish pass.
            if (nb.index as usize) < lists.len() {
                lists[nb.index as usize].insert(Neighbor::new(id, nb.dist));
            }
        }
        lists.push(own);
    }

    // One neighbors-of-neighbors pass over the combined graph: newly added
    // edges propagate to original points whose true neighborhoods shifted.
    let snapshot: Vec<Vec<u32>> = lists.iter().map(|h| h.indices().collect()).collect();
    for p in 0..lists.len() {
        let row = vectors.row(p);
        for &q in &snapshot[p] {
            for &r in &snapshot[q as usize] {
                if r as usize != p {
                    let d = metric.eval(row, vectors.row(r as usize));
                    lists[p].insert(Neighbor::new(r, d));
                }
            }
        }
    }

    let lists: Vec<Vec<Neighbor>> = lists.into_iter().map(KnnList::into_vec).collect();
    Ok(Extended { vectors, graph: Knng { lists, params: graph.params } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WknngBuilder;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    fn split(n_base: usize, n_new: usize) -> (VectorSet, VectorSet, VectorSet) {
        let all = DatasetSpec::Manifold { n: n_base + n_new, ambient_dim: 24, intrinsic_dim: 4 }
            .generate(77)
            .vectors;
        let base = all.gather(&(0..n_base).collect::<Vec<_>>());
        let new = all.gather(&(n_base..n_base + n_new).collect::<Vec<_>>());
        (all, base, new)
    }

    #[test]
    fn extension_keeps_recall_high() {
        let (all, base, new) = split(400, 60);
        let (graph, _) = WknngBuilder::new(10)
            .trees(6)
            .leaf_size(24)
            .exploration(1)
            .seed(3)
            .build_native(&base)
            .expect("valid");
        let ext = extend_graph(&base, &graph, &new, 0).expect("same dim");
        assert_eq!(ext.vectors.len(), 460);
        assert_eq!(ext.vectors.as_flat(), all.as_flat());
        assert_eq!(ext.graph.len(), 460);

        let truth = exact_knn(&ext.vectors, 10, Metric::SquaredL2);
        let r = recall(&ext.graph.lists, &truth);
        assert!(r > 0.7, "extended-graph recall {r:.3}");
        // The new points themselves must have found good neighborhoods.
        let new_truth = &truth[400..];
        let new_lists = &ext.graph.lists[400..];
        let rn = recall(new_lists, new_truth);
        assert!(rn > 0.7, "new-point recall {rn:.3}");
        // Context: a full rebuild is the quality ceiling; extension must be
        // within striking distance of it.
        let (rebuilt, _) = WknngBuilder::new(10)
            .trees(6)
            .leaf_size(24)
            .exploration(1)
            .seed(3)
            .build_native(&ext.vectors)
            .expect("valid");
        let rr = recall(&rebuilt.lists, &truth);
        assert!(r > rr - 0.2, "extension {r:.3} too far below rebuild {rr:.3}");
    }

    #[test]
    fn graph_shape_invariants_after_extension() {
        let (_, base, new) = split(150, 30);
        let (graph, _) = WknngBuilder::new(6)
            .trees(4)
            .leaf_size(16)
            .exploration(1)
            .seed(4)
            .build_native(&base)
            .expect("valid");
        let ext = extend_graph(&base, &graph, &new, 24).expect("same dim");
        for (p, list) in ext.graph.lists.iter().enumerate() {
            assert!(list.len() <= 6);
            assert!(list.iter().all(|nb| nb.index as usize != p));
            assert!(list.iter().all(|nb| (nb.index as usize) < 180));
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key());
            }
        }
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let base = DatasetSpec::UniformCube { n: 30, dim: 4 }.generate(1).vectors;
        let (graph, _) =
            WknngBuilder::new(3).trees(2).leaf_size(8).build_native(&base).expect("valid");
        let wrong = DatasetSpec::UniformCube { n: 5, dim: 6 }.generate(1).vectors;
        assert!(extend_graph(&base, &graph, &wrong, 0).is_err());
    }

    #[test]
    fn empty_extension_only_improves_the_graph() {
        let base = DatasetSpec::UniformCube { n: 40, dim: 4 }.generate(2).vectors;
        let (graph, _) =
            WknngBuilder::new(4).trees(2).leaf_size(8).build_native(&base).expect("valid");
        let empty = VectorSet::new(vec![], 4).unwrap();
        let ext = extend_graph(&base, &graph, &empty, 0).expect("same dim");
        assert_eq!(ext.vectors, base);
        // The polish pass may refine lists, never degrade them.
        let truth = exact_knn(&base, 4, Metric::SquaredL2);
        assert!(recall(&ext.graph.lists, &truth) >= recall(&graph.lists, &truth));
    }
}
