//! Structured log of what the degraded-execution policy did during a build.
//!
//! A device build under a [`crate::params::BuildPolicy`] can retry transient
//! launch failures, fall back to a cheaper kernel variant, absorb injected
//! memory corruption and repair the graph afterwards. None of that should be
//! silent: every recovery action is recorded as a [`BuildEvent`] and the full
//! [`BuildEvents`] log is returned alongside the launch reports, so callers
//! (and tests) can assert exactly which faults occurred and how they were
//! handled.

use std::fmt;

use crate::params::KernelVariant;

/// The pipeline phase a recovery action happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuildPhase {
    /// RP-forest construction.
    Forest,
    /// Per-tree bucket all-pairs kernels.
    Bucket,
    /// Neighbors-of-neighbors exploration kernels.
    Explore,
}

impl fmt::Display for BuildPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPhase::Forest => write!(f, "forest"),
            BuildPhase::Bucket => write!(f, "bucket"),
            BuildPhase::Explore => write!(f, "explore"),
        }
    }
}

/// One recovery action taken by the build pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuildEvent {
    /// A transient launch failure was retried after a simulated backoff.
    LaunchRetried {
        /// Phase the failing launch belonged to.
        phase: BuildPhase,
        /// 1-based retry attempt number.
        attempt: u32,
        /// Simulated cycles charged to the phase for the backoff.
        backoff_cycles: u64,
    },
    /// The kernel variant was degraded to a less resource-hungry one.
    VariantDegraded {
        /// Phase in which the degradation was decided.
        phase: BuildPhase,
        /// Variant that could not run.
        from: KernelVariant,
        /// Variant the build continues with.
        to: KernelVariant,
    },
    /// An injected single-bit upset was applied to the slot array.
    BitFlipApplied {
        /// Flipped word index within the `n × k` slot buffer.
        word: usize,
        /// Flipped bit position within the word.
        bit: u8,
    },
    /// The post-build audit finished.
    AuditCompleted {
        /// Total invariant violations found (including informational ones).
        violations: usize,
        /// Points whose slot data was actually corrupted.
        corrupted: usize,
    },
    /// A corrupted neighbor list was re-derived by brute force.
    ListRepaired {
        /// The point whose list was rebuilt.
        point: usize,
    },
}

impl fmt::Display for BuildEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildEvent::LaunchRetried { phase, attempt, backoff_cycles } => write!(
                f,
                "retried {phase} launch (attempt {attempt}, backoff {backoff_cycles} cycles)"
            ),
            BuildEvent::VariantDegraded { phase, from, to } => {
                write!(f, "degraded {phase} kernel {} -> {}", from.name(), to.name())
            }
            BuildEvent::BitFlipApplied { word, bit } => {
                write!(f, "bit flip applied to slot word {word} bit {bit}")
            }
            BuildEvent::AuditCompleted { violations, corrupted } => {
                write!(f, "audit found {violations} violations ({corrupted} corrupted points)")
            }
            BuildEvent::ListRepaired { point } => {
                write!(f, "repaired neighbor list of point {point}")
            }
        }
    }
}

/// Ordered log of every recovery action of one build.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuildEvents {
    events: Vec<BuildEvent>,
}

impl BuildEvents {
    /// An empty log.
    pub fn new() -> Self {
        BuildEvents::default()
    }

    /// Append an event.
    pub fn push(&mut self, e: BuildEvent) {
        self.events.push(e);
    }

    /// The events, in the order they happened.
    pub fn as_slice(&self) -> &[BuildEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the build needed no recovery at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of transient-launch retries.
    pub fn retries(&self) -> usize {
        self.count(|e| matches!(e, BuildEvent::LaunchRetried { .. }))
    }

    /// Number of kernel-variant degradations.
    pub fn degradations(&self) -> usize {
        self.count(|e| matches!(e, BuildEvent::VariantDegraded { .. }))
    }

    /// Number of bit flips absorbed.
    pub fn bit_flips(&self) -> usize {
        self.count(|e| matches!(e, BuildEvent::BitFlipApplied { .. }))
    }

    /// Number of neighbor lists repaired.
    pub fn repairs(&self) -> usize {
        self.count(|e| matches!(e, BuildEvent::ListRepaired { .. }))
    }

    fn count(&self, pred: impl Fn(&BuildEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// One-line summary for CLI output, e.g.
    /// `2 events: 1 retry, 0 degradations, 0 bit flips, 1 repair`.
    pub fn summary(&self) -> String {
        format!(
            "{} events: {} retries, {} degradations, {} bit flips, {} repairs",
            self.len(),
            self.retries(),
            self.degradations(),
            self.bit_flips(),
            self.repairs()
        )
    }
}

impl<'a> IntoIterator for &'a BuildEvents {
    type Item = &'a BuildEvent;
    type IntoIter = std::slice::Iter<'a, BuildEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_partition_the_log() {
        let mut ev = BuildEvents::new();
        assert!(ev.is_empty());
        ev.push(BuildEvent::LaunchRetried {
            phase: BuildPhase::Bucket,
            attempt: 1,
            backoff_cycles: 100,
        });
        ev.push(BuildEvent::VariantDegraded {
            phase: BuildPhase::Bucket,
            from: KernelVariant::Tiled,
            to: KernelVariant::Atomic,
        });
        ev.push(BuildEvent::BitFlipApplied { word: 7, bit: 61 });
        ev.push(BuildEvent::AuditCompleted { violations: 2, corrupted: 1 });
        ev.push(BuildEvent::ListRepaired { point: 3 });
        assert_eq!(ev.len(), 5);
        assert_eq!(ev.retries(), 1);
        assert_eq!(ev.degradations(), 1);
        assert_eq!(ev.bit_flips(), 1);
        assert_eq!(ev.repairs(), 1);
        assert_eq!(ev.summary(), "5 events: 1 retries, 1 degradations, 1 bit flips, 1 repairs");
        assert_eq!((&ev).into_iter().count(), 5);
    }

    #[test]
    fn events_and_phases_display() {
        assert_eq!(BuildPhase::Forest.to_string(), "forest");
        assert_eq!(BuildPhase::Bucket.to_string(), "bucket");
        assert_eq!(BuildPhase::Explore.to_string(), "explore");
        let e = BuildEvent::LaunchRetried {
            phase: BuildPhase::Explore,
            attempt: 2,
            backoff_cycles: 512,
        };
        assert!(e.to_string().contains("attempt 2"));
        let e = BuildEvent::VariantDegraded {
            phase: BuildPhase::Bucket,
            from: KernelVariant::Tiled,
            to: KernelVariant::Atomic,
        };
        assert!(e.to_string().contains("w-knng-tiled"));
        assert!(e.to_string().contains("w-knng-atomic"));
        assert!(BuildEvent::BitFlipApplied { word: 1, bit: 2 }.to_string().contains("bit 2"));
        assert!(BuildEvent::AuditCompleted { violations: 0, corrupted: 0 }
            .to_string()
            .contains("0 violations"));
        assert!(BuildEvent::ListRepaired { point: 9 }.to_string().contains("point 9"));
    }
}
