//! Structural quality metrics of a built K-NN graph.
//!
//! Recall measures agreement with the exact graph; these metrics measure
//! properties downstream applications care about directly: a t-SNE affinity
//! graph must be (nearly) connected, a navigable search graph must not have
//! sink-heavy degree distributions, and symmetrization is the standard
//! preprocessing step for both.

use wknng_data::{sort_neighbors, Neighbor};

/// Degree and connectivity statistics of a K-NN graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of points.
    pub n: usize,
    /// Total directed edges.
    pub edges: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Mean in-degree of the top 1% most-referenced points divided by k —
    /// the *hubness* of the graph (≫1 means a few points absorb edges, a
    /// known failure mode of high-dimensional K-NN graphs).
    pub hubness: f64,
    /// Weakly connected components (treating edges as undirected).
    pub components: usize,
    /// Fraction of directed edges whose reverse edge is also present.
    pub symmetry: f64,
}

/// Compute [`GraphStats`] for neighbor lists.
pub fn graph_stats(lists: &[Vec<Neighbor>]) -> GraphStats {
    let n = lists.len();
    let edges: usize = lists.iter().map(|l| l.len()).sum();
    let min_degree = lists.iter().map(|l| l.len()).min().unwrap_or(0);
    let max_degree = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let mean_degree = if n == 0 { 0.0 } else { edges as f64 / n as f64 };

    // In-degrees and hubness.
    let mut indeg = vec![0usize; n];
    for list in lists {
        for nb in list {
            indeg[nb.index as usize] += 1;
        }
    }
    let hubness = if n == 0 || mean_degree == 0.0 {
        0.0
    } else {
        let mut sorted = indeg.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top = (n / 100).max(1);
        let top_mean: f64 = sorted[..top].iter().sum::<usize>() as f64 / top as f64;
        top_mean / mean_degree
    };

    // Weak connectivity via union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, list) in lists.iter().enumerate() {
        for nb in list {
            let (a, b) = (find(&mut parent, i), find(&mut parent, nb.index as usize));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut roots = std::collections::HashSet::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        roots.insert(r);
    }

    // Symmetry: fraction of edges with a reverse edge.
    let mut mutual = 0usize;
    for (i, list) in lists.iter().enumerate() {
        for nb in list {
            if lists[nb.index as usize].iter().any(|r| r.index as usize == i) {
                mutual += 1;
            }
        }
    }
    let symmetry = if edges == 0 { 1.0 } else { mutual as f64 / edges as f64 };

    GraphStats {
        n,
        edges,
        min_degree,
        max_degree,
        mean_degree,
        hubness,
        components: roots.len(),
        symmetry,
    }
}

/// Symmetrize a directed K-NN graph: add every reverse edge, re-sort, and
/// (optionally) cap each list at `max_degree` keeping the nearest. This is
/// the standard preprocessing for t-SNE affinities and navigable graphs.
pub fn symmetrize(lists: &[Vec<Neighbor>], max_degree: Option<usize>) -> Vec<Vec<Neighbor>> {
    let n = lists.len();
    let mut out: Vec<Vec<Neighbor>> = lists.to_vec();
    for (i, list) in lists.iter().enumerate() {
        for nb in list {
            let j = nb.index as usize;
            if !lists[j].iter().any(|r| r.index as usize == i)
                && !out[j].iter().any(|r| r.index as usize == i)
            {
                out[j].push(Neighbor::new(i as u32, nb.dist));
            }
        }
    }
    for (i, list) in out.iter_mut().enumerate() {
        sort_neighbors(list);
        list.dedup_by_key(|nb| nb.index);
        debug_assert!(list.iter().all(|nb| nb.index as usize != i));
        if let Some(cap) = max_degree {
            list.truncate(cap);
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(i: u32, d: f32) -> Neighbor {
        Neighbor::new(i, d)
    }

    #[test]
    fn stats_of_a_ring() {
        // 0 -> 1 -> 2 -> 3 -> 0: one component, zero symmetry, degree 1.
        let lists = vec![vec![nb(1, 1.0)], vec![nb(2, 1.0)], vec![nb(3, 1.0)], vec![nb(0, 1.0)]];
        let s = graph_stats(&lists);
        assert_eq!(s.n, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.components, 1);
        assert_eq!(s.symmetry, 0.0);
        assert_eq!((s.min_degree, s.max_degree), (1, 1));
        assert_eq!(s.mean_degree, 1.0);
    }

    #[test]
    fn stats_of_disconnected_mutual_pairs() {
        let lists = vec![vec![nb(1, 1.0)], vec![nb(0, 1.0)], vec![nb(3, 1.0)], vec![nb(2, 1.0)]];
        let s = graph_stats(&lists);
        assert_eq!(s.components, 2);
        assert_eq!(s.symmetry, 1.0);
    }

    #[test]
    fn hubness_detects_a_sink() {
        // Everyone points at 0 (100 points => top 1% = point 0).
        let n = 100;
        let mut lists = vec![vec![nb(0, 1.0)]; n];
        lists[0] = vec![nb(1, 1.0)];
        let s = graph_stats(&lists);
        assert!(s.hubness > 50.0, "hubness {}", s.hubness);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let lists = vec![vec![nb(1, 2.0)], vec![], vec![nb(0, 5.0)]];
        let sym = symmetrize(&lists, None);
        // 1 gained the reverse of 0->1; 0 gained the reverse of 2->0.
        assert!(sym[1].iter().any(|e| e.index == 0 && e.dist == 2.0));
        assert!(sym[0].iter().any(|e| e.index == 2 && e.dist == 5.0));
        let s = graph_stats(&sym);
        assert_eq!(s.symmetry, 1.0);
    }

    #[test]
    fn symmetrize_respects_cap_and_keeps_nearest() {
        let lists = vec![vec![nb(1, 1.0), nb(2, 9.0)], vec![nb(0, 1.0)], vec![nb(1, 3.0)]];
        let sym = symmetrize(&lists, Some(2));
        for list in &sym {
            assert!(list.len() <= 2);
            for w in list.windows(2) {
                assert!(w[0].key() <= w[1].key());
            }
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let s = graph_stats(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.symmetry, 1.0);
        assert!(symmetrize(&[], Some(3)).is_empty());
    }
}
