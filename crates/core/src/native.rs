//! The native (multi-threaded CPU) backend.
//!
//! Implements the identical logical algorithm as the device kernels —
//! RP-forest bucketing, per-bucket all-pairs candidate generation, then
//! neighbors-of-neighbors exploration — parallelised with rayon over points.
//! This backend provides the wall-clock numbers of the evaluation; the
//! simulated device provides the GPU-shape numbers.
//!
//! Distances dispatch through [`wknng_data::kernel`]: AVX2+FMA blocked
//! kernels when the CPU has them, the scalar oracle otherwise (or when the
//! `force-scalar` feature / [`wknng_data::KernelMode::ForceScalar`] pins the
//! fallback). Quantized builds ([`QuantMode::Sq8`] / [`QuantMode::Pq`])
//! swap the coordinate representation the distance loop reads — the phase
//! the paper identifies as memory-traffic-bound.

use std::time::Instant;

use rayon::prelude::*;

use wknng_data::{
    kernel_mode, sort_neighbors, AdcTable, DistanceKernel, KernelMode, Metric, Neighbor,
    PqCodebook, PqCodes, PqParams, QuantizedSet, ScalarKernel, SimdKernel, VectorSet,
};
use wknng_forest::{build_forest, ForestParams, TreeParams};

use crate::error::KnngError;
use crate::graph::KnnGraph;
use crate::params::{QuantMode, WknngParams};

/// Wall-clock milliseconds spent in each pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// RP-forest construction.
    pub forest_ms: f64,
    /// Quantizer training + encoding, and (for PQ) the final exact re-score
    /// of the finished lists. Zero for full-precision builds.
    pub quant_ms: f64,
    /// Per-bucket all-pairs candidate generation.
    pub bucket_ms: f64,
    /// Neighbors-of-neighbors exploration.
    pub explore_ms: f64,
}

impl PhaseTimings {
    /// Total build time.
    pub fn total_ms(&self) -> f64 {
        self.forest_ms + self.quant_ms + self.bucket_ms + self.explore_ms
    }
}

/// Coordinate representation owned by one build.
enum QuantState {
    None,
    /// SQ8 codes decoded back to `f32`: the build evaluates exactly the
    /// distances an 8-bit device kernel would produce (experiment E15).
    Sq8(VectorSet),
    /// PQ codebook + packed codes; distances run through per-query ADC
    /// tables (experiment E20).
    Pq(PqCodebook, PqCodes),
}

/// Distance evaluation context of one build: exact rows through the
/// dispatched SIMD/scalar kernel, or PQ asymmetric code distances.
///
/// Generic over the concrete kernel type so the per-candidate evaluation in
/// the bucket and exploration loops inlines — dispatching through `&dyn`
/// here costs an indirect call per distance, measurably (~20%) slowing the
/// whole build at small dimensions.
enum DistCtx<'a, K> {
    Exact { kern: K, metric: Metric, vs: &'a VectorSet },
    Adc { cb: &'a PqCodebook, codes: &'a PqCodes, vs: &'a VectorSet },
}

impl<'a, K: DistanceKernel + Copy> DistCtx<'a, K> {
    /// Per-query state: the query's row, or its ADC lookup table (built once
    /// and reused across every candidate the query examines in this pass).
    fn query(&self, p: usize) -> QueryEval<'a, K> {
        match self {
            DistCtx::Exact { kern, metric, vs } => {
                QueryEval::Exact { kern: *kern, metric: *metric, row: vs.row(p), vs }
            }
            DistCtx::Adc { cb, codes, vs } => {
                QueryEval::Adc { table: cb.adc_table(vs.row(p)), codes }
            }
        }
    }
}

/// One query's evaluator over candidate ids.
enum QueryEval<'a, K> {
    Exact { kern: K, metric: Metric, row: &'a [f32], vs: &'a VectorSet },
    Adc { table: AdcTable, codes: &'a PqCodes },
}

impl<K: DistanceKernel + Copy> QueryEval<'_, K> {
    #[inline]
    fn dist(&self, q: u32) -> f32 {
        match self {
            QueryEval::Exact { kern, metric, row, vs } => {
                kern.eval(*metric, row, vs.row(q as usize))
            }
            QueryEval::Adc { table, codes } => table.distance(codes.row(q as usize)),
        }
    }

    /// Blocked one-query-vs-many evaluation (clears and refills `out`).
    #[inline]
    fn dist_many(&self, ids: &[u32], out: &mut Vec<f32>) {
        match self {
            QueryEval::Exact { kern, metric, row, vs } => {
                kern.eval_many(*metric, row, vs, ids, out)
            }
            QueryEval::Adc { table, codes } => table.distances(codes, ids, out),
        }
    }
}

/// Build an approximate K-NNG natively. Deterministic in `params.seed`.
pub fn build_native(
    vs: &VectorSet,
    params: &WknngParams,
) -> Result<(Vec<Vec<Neighbor>>, PhaseTimings), KnngError> {
    // Resolve the kernel mode once and monomorphize the whole build on the
    // concrete kernel: every distance in the hot loops is a direct,
    // inlinable call. `SimdKernel` already degrades to the scalar oracle on
    // CPUs without AVX2 (and under the `force-scalar` feature).
    match kernel_mode() {
        KernelMode::ForceScalar => build_native_with(vs, params, ScalarKernel),
        KernelMode::Auto => build_native_with(vs, params, SimdKernel),
    }
}

fn build_native_with<K: DistanceKernel + Copy>(
    vs: &VectorSet,
    params: &WknngParams,
    kern: K,
) -> Result<(Vec<Vec<Neighbor>>, PhaseTimings), KnngError> {
    params.validate(vs.len())?;
    let n = vs.len();
    let mut timings = PhaseTimings::default();

    // The forest always partitions the original coordinates — quantization
    // only changes what the distance loop reads, not the space partition.
    let t0 = Instant::now();
    let forest = build_forest(
        vs,
        ForestParams {
            num_trees: params.num_trees,
            tree: TreeParams { leaf_size: params.leaf_size, projection: params.projection },
        },
        params.seed,
    )?;
    timings.forest_ms = t0.elapsed().as_secs_f64() * 1e3;

    let tq = Instant::now();
    let quant = match params.quant {
        QuantMode::None => QuantState::None,
        QuantMode::Sq8 => QuantState::Sq8(QuantizedSet::quantize(vs)?.decode()),
        QuantMode::Pq { m } => {
            let pq_params = PqParams {
                m,
                // Decorrelate from the forest's seed stream while staying
                // deterministic in `params.seed`.
                seed: params.seed ^ 0x9E37_79B9_7F4A_7C15,
                ..PqParams::default()
            };
            let cb = PqCodebook::train(vs, &pq_params)?;
            let codes = cb.encode(vs)?;
            QuantState::Pq(cb, codes)
        }
    };
    let ctx = match &quant {
        QuantState::None => DistCtx::Exact { kern, metric: params.metric, vs },
        QuantState::Sq8(decoded) => DistCtx::Exact { kern, metric: params.metric, vs: decoded },
        QuantState::Pq(cb, codes) => DistCtx::Adc { cb, codes, vs },
    };
    timings.quant_ms = tq.elapsed().as_secs_f64() * 1e3;

    // Candidate generation runs point-outer with an inner loop over trees:
    // each point builds its query state once (for PQ, one ADC table covering
    // every tree's bucket) and scans its buckets with the blocked
    // one-query-vs-many kernel. The per-list insertion sequence is identical
    // to the tree-outer formulation, so the output is unchanged.
    let t1 = Instant::now();
    let mut graph = KnnGraph::new(n, params.k);
    let bucket_of: Vec<Vec<u32>> = forest
        .trees
        .iter()
        .map(|tree| {
            let mut map = vec![u32::MAX; n];
            for (b, bucket) in tree.buckets.iter().enumerate() {
                for &p in bucket {
                    map[p as usize] = b as u32;
                }
            }
            map
        })
        .collect();
    graph.lists_mut().par_iter_mut().enumerate().for_each(|(p, list)| {
        let eval = ctx.query(p);
        let mut dists = Vec::new();
        for (tree, map) in forest.trees.iter().zip(&bucket_of) {
            let bucket = &tree.buckets[map[p] as usize];
            eval.dist_many(bucket, &mut dists);
            for (&q, &d) in bucket.iter().zip(&dists) {
                if q as usize != p {
                    list.insert(Neighbor::new(q, d));
                }
            }
        }
    });
    timings.bucket_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    match params.exploration_mode {
        crate::params::ExplorationMode::Full => {
            for _ in 0..params.exploration_iters {
                explore_once(&ctx, &mut graph);
            }
        }
        crate::params::ExplorationMode::Incremental => {
            // Round 0 treats every current neighbor as fresh.
            let mut fresh: Vec<Vec<u32>> = graph.index_snapshot();
            for _ in 0..params.exploration_iters {
                if fresh.iter().all(Vec::is_empty) {
                    break; // converged: nothing new to join against
                }
                fresh = explore_once_incremental(&ctx, &mut graph, &fresh);
            }
        }
    }
    timings.explore_ms = t2.elapsed().as_secs_f64() * 1e3;

    let mut lists = graph.into_lists();
    if matches!(quant, QuantState::Pq(..)) {
        // ADC distances selected the candidates; the shipped graph carries
        // exact distances so downstream search/serve layers see the true
        // metric. O(n·k·dim) — a sliver next to the bucket pass.
        let t3 = Instant::now();
        lists.par_iter_mut().enumerate().for_each(|(p, list)| {
            let row = vs.row(p);
            for nb in list.iter_mut() {
                nb.dist = kern.eval(params.metric, row, vs.row(nb.index as usize));
            }
            sort_neighbors(list);
        });
        timings.quant_ms += t3.elapsed().as_secs_f64() * 1e3;
    }

    Ok((lists, timings))
}

/// One neighbors-of-neighbors pass: every point examines the neighbors of
/// its current neighbors as candidates. Reads a frozen snapshot so the pass
/// is order-independent and deterministic under parallelism.
fn explore_once<K: DistanceKernel + Copy>(ctx: &DistCtx<'_, K>, graph: &mut KnnGraph) {
    let snapshot = graph.index_snapshot();
    graph.lists_mut().par_iter_mut().enumerate().for_each(|(p, list)| {
        let eval = ctx.query(p);
        for &q in &snapshot[p] {
            for &r in &snapshot[q as usize] {
                if r as usize == p {
                    continue;
                }
                // `insert` rejects duplicates, so no visited-set needed
                // at these k values.
                list.insert(Neighbor::new(r, eval.dist(r)));
            }
        }
    });
}

/// One incremental exploration pass: only candidate paths `p → q → r` where
/// the `p → q` edge or the `r` entry of `q`'s list is fresh (inserted last
/// round) are examined. Returns the per-point indices inserted this round.
fn explore_once_incremental<K: DistanceKernel + Copy>(
    ctx: &DistCtx<'_, K>,
    graph: &mut KnnGraph,
    fresh: &[Vec<u32>],
) -> Vec<Vec<u32>> {
    let snapshot = graph.index_snapshot();
    graph
        .lists_mut()
        .par_iter_mut()
        .enumerate()
        .map(|(p, list)| {
            let eval = ctx.query(p);
            let mut inserted = Vec::new();
            let mut try_insert = |r: u32, list: &mut crate::heap::KnnList| {
                if r as usize != p && list.insert(Neighbor::new(r, eval.dist(r))) {
                    inserted.push(r);
                }
            };
            // Fresh forward edges: explore the whole list of the new neighbor.
            for &q in &fresh[p] {
                for &r in &snapshot[q as usize] {
                    try_insert(r, list);
                }
            }
            // Old forward edges: explore only the fresh entries of q's list.
            for &q in &snapshot[p] {
                if fresh[p].contains(&q) {
                    continue; // already fully explored above
                }
                for &r in &fresh[q as usize] {
                    try_insert(r, list);
                }
            }
            inserted
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    fn params(k: usize, trees: usize, leaf: usize, explore: usize) -> WknngParams {
        WknngParams {
            k,
            num_trees: trees,
            leaf_size: leaf,
            exploration_iters: explore,
            seed: 42,
            ..WknngParams::default()
        }
    }

    #[test]
    fn validates_inputs() {
        let vs = DatasetSpec::UniformCube { n: 10, dim: 4 }.generate(0).vectors;
        assert!(build_native(&vs, &params(0, 1, 8, 0)).is_err());
        assert!(build_native(&vs, &params(10, 1, 8, 0)).is_err());
    }

    #[test]
    fn single_bucket_tree_is_exact() {
        // leaf_size >= n means every tree is one bucket: all-pairs = exact.
        // Neighbor identity must match ground truth exactly; distances are
        // compared with a tolerance because the dispatched SIMD kernel may
        // reassociate the reduction relative to the scalar ground truth.
        let vs = DatasetSpec::UniformCube { n: 40, dim: 5 }.generate(1).vectors;
        let (lists, timings) = build_native(&vs, &params(5, 1, 64, 0)).unwrap();
        let truth = exact_knn(&vs, 5, Metric::SquaredL2);
        assert_eq!(recall(&lists, &truth), 1.0);
        for (got, want) in lists.iter().zip(&truth) {
            let got_ids: Vec<u32> = got.iter().map(|nb| nb.index).collect();
            let want_ids: Vec<u32> = want.iter().map(|nb| nb.index).collect();
            assert_eq!(got_ids, want_ids);
            for (g, w) in got.iter().zip(want) {
                assert!(
                    (g.dist - w.dist).abs() <= 1e-5 * (1.0 + w.dist.abs()),
                    "dist drift: {} vs {}",
                    g.dist,
                    w.dist
                );
            }
        }
        assert!(timings.total_ms() >= 0.0);
    }

    #[test]
    fn more_trees_help_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(3)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let (one, _) = build_native(&vs, &params(8, 1, 16, 0)).unwrap();
        let (eight, _) = build_native(&vs, &params(8, 8, 16, 0)).unwrap();
        let (r1, r8) = (recall(&one, &truth), recall(&eight, &truth));
        assert!(r8 > r1, "recall with 8 trees ({r8:.3}) must beat 1 tree ({r1:.3})");
        assert!(r8 > 0.5, "8 trees should recover most neighbors, got {r8:.3}");
    }

    #[test]
    fn exploration_helps_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(4)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let (no_exp, _) = build_native(&vs, &params(8, 2, 16, 0)).unwrap();
        let (exp, _) = build_native(&vs, &params(8, 2, 16, 2)).unwrap();
        let (r0, r2) = (recall(&no_exp, &truth), recall(&exp, &truth));
        assert!(r2 > r0, "exploration must improve recall: {r0:.3} -> {r2:.3}");
    }

    #[test]
    fn deterministic_output() {
        let vs = DatasetSpec::sift_like(150).generate(5).vectors;
        let p = params(6, 3, 16, 1);
        let (a, _) = build_native(&vs, &p).unwrap();
        let (b, _) = build_native(&vs, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops_and_k_respected() {
        let vs = DatasetSpec::UniformCube { n: 100, dim: 6 }.generate(6).vectors;
        let (lists, _) = build_native(&vs, &params(7, 3, 12, 1)).unwrap();
        for (p, list) in lists.iter().enumerate() {
            assert!(list.len() <= 7);
            assert!(list.iter().all(|nb| nb.index as usize != p));
            // Sorted, unique.
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key());
            }
        }
    }

    #[test]
    fn incremental_exploration_improves_over_none() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(44)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let base = params(8, 2, 16, 0);
        let (none, _) = build_native(&vs, &base).unwrap();
        let inc = WknngParams {
            exploration_iters: 3,
            exploration_mode: crate::params::ExplorationMode::Incremental,
            ..base
        };
        let (inc_lists, _) = build_native(&vs, &inc).unwrap();
        let full = WknngParams { exploration_iters: 3, ..base };
        let (full_lists, _) = build_native(&vs, &full).unwrap();
        let (r0, ri, rf) =
            (recall(&none, &truth), recall(&inc_lists, &truth), recall(&full_lists, &truth));
        assert!(ri > r0, "incremental must help: {r0:.3} -> {ri:.3}");
        // Full explores a superset each round (not a strict theorem across
        // rounds, so allow a hair of slack).
        assert!(rf >= ri - 0.02, "full should not lose to incremental: {ri:.3} vs {rf:.3}");
        assert!(ri > 0.85, "incremental recall too low: {ri:.3}");
    }

    #[test]
    fn incremental_exploration_is_deterministic() {
        let vs = DatasetSpec::sift_like(150).generate(45).vectors;
        let p = WknngParams {
            exploration_iters: 2,
            exploration_mode: crate::params::ExplorationMode::Incremental,
            ..params(6, 3, 16, 2)
        };
        let (a, _) = build_native(&vs, &p).unwrap();
        let (b, _) = build_native(&vs, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn other_metrics_work_natively() {
        let vs = DatasetSpec::HypersphereShell { n: 60, dim: 8 }.generate(7).vectors;
        let p = WknngParams { metric: Metric::Cosine, ..params(4, 2, 64, 0) };
        let (lists, _) = build_native(&vs, &p).unwrap();
        let truth = exact_knn(&vs, 4, Metric::Cosine);
        // leaf 64 with n=60: single bucket, exact.
        assert_eq!(recall(&lists, &truth), 1.0);
    }
}

#[cfg(test)]
mod quant_tests {
    use super::*;
    use crate::params::ExplorationMode;
    use crate::recall::recall;
    use wknng_data::{exact_knn, kernel, DatasetSpec, Metric};

    fn base(k: usize) -> WknngParams {
        WknngParams {
            k,
            num_trees: 4,
            leaf_size: 24,
            exploration_iters: 1,
            seed: 7,
            ..WknngParams::default()
        }
    }

    #[test]
    fn sq8_build_stays_close_to_exact() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(20)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let p = WknngParams { quant: QuantMode::Sq8, ..base(8) };
        let (lists, timings) = build_native(&vs, &p).unwrap();
        let (exact, _) = build_native(&vs, &base(8)).unwrap();
        let (rq, re) = (recall(&lists, &truth), recall(&exact, &truth));
        assert!(timings.quant_ms >= 0.0);
        assert!(rq >= re - 0.05, "sq8 recall {rq:.3} fell too far below f32 {re:.3}");
    }

    #[test]
    fn pq_build_recall_is_bounded_and_deterministic() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(21)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let p = WknngParams { quant: QuantMode::Pq { m: 8 }, ..base(8) };
        let (a, _) = build_native(&vs, &p).unwrap();
        let (b, _) = build_native(&vs, &p).unwrap();
        assert_eq!(a, b, "PQ builds must be deterministic in the seed");
        let (exact, _) = build_native(&vs, &base(8)).unwrap();
        let (rq, re) = (recall(&a, &truth), recall(&exact, &truth));
        assert!(rq >= re - 0.15, "pq recall {rq:.3} fell too far below f32 {re:.3}");
    }

    #[test]
    fn pq_lists_carry_exact_rescored_distances() {
        let vs = DatasetSpec::UniformCube { n: 200, dim: 12 }.generate(22).vectors;
        let p = WknngParams { quant: QuantMode::Pq { m: 4 }, ..base(6) };
        let (lists, _) = build_native(&vs, &p).unwrap();
        for (i, list) in lists.iter().enumerate() {
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key(), "rescored lists stay sorted");
            }
            for nb in list {
                let want = kernel().eval(Metric::SquaredL2, vs.row(i), vs.row(nb.index as usize));
                assert_eq!(nb.dist, want, "point {i} neighbor {} not rescored", nb.index);
            }
        }
    }

    #[test]
    fn pq_rejects_non_l2_metrics_and_zero_m() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 8 }.generate(23).vectors;
        let p = WknngParams { metric: Metric::Cosine, quant: QuantMode::Pq { m: 4 }, ..base(4) };
        assert_eq!(
            build_native(&vs, &p).unwrap_err(),
            KnngError::UnsupportedQuantMetric(Metric::Cosine)
        );
        let p = WknngParams { quant: QuantMode::Pq { m: 0 }, ..base(4) };
        assert_eq!(build_native(&vs, &p).unwrap_err(), KnngError::ZeroSubquantizers);
    }

    #[test]
    fn quantized_builds_work_with_incremental_exploration() {
        let vs = DatasetSpec::GaussianClusters { n: 300, dim: 16, clusters: 6, spread: 0.3 }
            .generate(24)
            .vectors;
        let truth = exact_knn(&vs, 6, Metric::SquaredL2);
        for quant in [QuantMode::Sq8, QuantMode::Pq { m: 8 }] {
            let p = WknngParams {
                quant,
                exploration_iters: 2,
                exploration_mode: ExplorationMode::Incremental,
                ..base(6)
            };
            let (lists, _) = build_native(&vs, &p).unwrap();
            let r = recall(&lists, &truth);
            assert!(r > 0.6, "{} incremental recall too low: {r:.3}", quant.name());
        }
    }
}
