//! The native (multi-threaded CPU) backend.
//!
//! Implements the identical logical algorithm as the device kernels —
//! RP-forest bucketing, per-bucket all-pairs candidate generation, then
//! neighbors-of-neighbors exploration — parallelised with rayon over points.
//! This backend provides the wall-clock numbers of the evaluation; the
//! simulated device provides the GPU-shape numbers.

use std::time::Instant;

use rayon::prelude::*;

use wknng_data::{Neighbor, VectorSet};
use wknng_forest::{build_forest, ForestParams, TreeParams};

use crate::error::KnngError;
use crate::graph::KnnGraph;
use crate::params::WknngParams;

/// Wall-clock milliseconds spent in each pipeline phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// RP-forest construction.
    pub forest_ms: f64,
    /// Per-bucket all-pairs candidate generation.
    pub bucket_ms: f64,
    /// Neighbors-of-neighbors exploration.
    pub explore_ms: f64,
}

impl PhaseTimings {
    /// Total build time.
    pub fn total_ms(&self) -> f64 {
        self.forest_ms + self.bucket_ms + self.explore_ms
    }
}

/// Build an approximate K-NNG natively. Deterministic in `params.seed`.
pub fn build_native(
    vs: &VectorSet,
    params: &WknngParams,
) -> Result<(Vec<Vec<Neighbor>>, PhaseTimings), KnngError> {
    params.validate(vs.len())?;
    let n = vs.len();
    let mut timings = PhaseTimings::default();

    let t0 = Instant::now();
    let forest = build_forest(
        vs,
        ForestParams {
            num_trees: params.num_trees,
            tree: TreeParams { leaf_size: params.leaf_size, projection: params.projection },
        },
        params.seed,
    )?;
    timings.forest_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let mut graph = KnnGraph::new(n, params.k);
    for tree in &forest.trees {
        // Map each point to its bucket within this tree, then update every
        // point's own list in parallel — each list is touched by exactly one
        // task, so the pass is race-free and deterministic.
        let mut bucket_of = vec![u32::MAX; n];
        for (b, bucket) in tree.buckets.iter().enumerate() {
            for &p in bucket {
                bucket_of[p as usize] = b as u32;
            }
        }
        graph.lists_mut().par_iter_mut().enumerate().for_each(|(p, list)| {
            let bucket = &tree.buckets[bucket_of[p] as usize];
            let row = vs.row(p);
            for &q in bucket {
                if q as usize != p {
                    let d = params.metric.eval(row, vs.row(q as usize));
                    list.insert(Neighbor::new(q, d));
                }
            }
        });
    }
    timings.bucket_ms = t1.elapsed().as_secs_f64() * 1e3;

    let t2 = Instant::now();
    match params.exploration_mode {
        crate::params::ExplorationMode::Full => {
            for _ in 0..params.exploration_iters {
                explore_once(vs, params, &mut graph);
            }
        }
        crate::params::ExplorationMode::Incremental => {
            // Round 0 treats every current neighbor as fresh.
            let mut fresh: Vec<Vec<u32>> = graph.index_snapshot();
            for _ in 0..params.exploration_iters {
                if fresh.iter().all(Vec::is_empty) {
                    break; // converged: nothing new to join against
                }
                fresh = explore_once_incremental(vs, params, &mut graph, &fresh);
            }
        }
    }
    timings.explore_ms = t2.elapsed().as_secs_f64() * 1e3;

    Ok((graph.into_lists(), timings))
}

/// One neighbors-of-neighbors pass: every point examines the neighbors of
/// its current neighbors as candidates. Reads a frozen snapshot so the pass
/// is order-independent and deterministic under parallelism.
fn explore_once(vs: &VectorSet, params: &WknngParams, graph: &mut KnnGraph) {
    let snapshot = graph.index_snapshot();
    graph.lists_mut().par_iter_mut().enumerate().for_each(|(p, list)| {
        let row = vs.row(p);
        for &q in &snapshot[p] {
            for &r in &snapshot[q as usize] {
                if r as usize == p {
                    continue;
                }
                // `insert` rejects duplicates, so no visited-set needed
                // at these k values.
                let d = params.metric.eval(row, vs.row(r as usize));
                list.insert(Neighbor::new(r, d));
            }
        }
    });
}

/// One incremental exploration pass: only candidate paths `p → q → r` where
/// the `p → q` edge or the `r` entry of `q`'s list is fresh (inserted last
/// round) are examined. Returns the per-point indices inserted this round.
fn explore_once_incremental(
    vs: &VectorSet,
    params: &WknngParams,
    graph: &mut KnnGraph,
    fresh: &[Vec<u32>],
) -> Vec<Vec<u32>> {
    let snapshot = graph.index_snapshot();
    graph
        .lists_mut()
        .par_iter_mut()
        .enumerate()
        .map(|(p, list)| {
            let row = vs.row(p);
            let mut inserted = Vec::new();
            let mut try_insert = |r: u32, list: &mut crate::heap::KnnList| {
                if r as usize != p {
                    let d = params.metric.eval(row, vs.row(r as usize));
                    if list.insert(Neighbor::new(r, d)) {
                        inserted.push(r);
                    }
                }
            };
            // Fresh forward edges: explore the whole list of the new neighbor.
            for &q in &fresh[p] {
                for &r in &snapshot[q as usize] {
                    try_insert(r, list);
                }
            }
            // Old forward edges: explore only the fresh entries of q's list.
            for &q in &snapshot[p] {
                if fresh[p].contains(&q) {
                    continue; // already fully explored above
                }
                for &r in &fresh[q as usize] {
                    try_insert(r, list);
                }
            }
            inserted
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    fn params(k: usize, trees: usize, leaf: usize, explore: usize) -> WknngParams {
        WknngParams {
            k,
            num_trees: trees,
            leaf_size: leaf,
            exploration_iters: explore,
            seed: 42,
            ..WknngParams::default()
        }
    }

    #[test]
    fn validates_inputs() {
        let vs = DatasetSpec::UniformCube { n: 10, dim: 4 }.generate(0).vectors;
        assert!(build_native(&vs, &params(0, 1, 8, 0)).is_err());
        assert!(build_native(&vs, &params(10, 1, 8, 0)).is_err());
    }

    #[test]
    fn single_bucket_tree_is_exact() {
        // leaf_size >= n means every tree is one bucket: all-pairs = exact.
        let vs = DatasetSpec::UniformCube { n: 40, dim: 5 }.generate(1).vectors;
        let (lists, timings) = build_native(&vs, &params(5, 1, 64, 0)).unwrap();
        let truth = exact_knn(&vs, 5, Metric::SquaredL2);
        assert_eq!(recall(&lists, &truth), 1.0);
        assert_eq!(lists, truth);
        assert!(timings.total_ms() >= 0.0);
    }

    #[test]
    fn more_trees_help_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(3)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let (one, _) = build_native(&vs, &params(8, 1, 16, 0)).unwrap();
        let (eight, _) = build_native(&vs, &params(8, 8, 16, 0)).unwrap();
        let (r1, r8) = (recall(&one, &truth), recall(&eight, &truth));
        assert!(r8 > r1, "recall with 8 trees ({r8:.3}) must beat 1 tree ({r1:.3})");
        assert!(r8 > 0.5, "8 trees should recover most neighbors, got {r8:.3}");
    }

    #[test]
    fn exploration_helps_recall() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(4)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let (no_exp, _) = build_native(&vs, &params(8, 2, 16, 0)).unwrap();
        let (exp, _) = build_native(&vs, &params(8, 2, 16, 2)).unwrap();
        let (r0, r2) = (recall(&no_exp, &truth), recall(&exp, &truth));
        assert!(r2 > r0, "exploration must improve recall: {r0:.3} -> {r2:.3}");
    }

    #[test]
    fn deterministic_output() {
        let vs = DatasetSpec::sift_like(150).generate(5).vectors;
        let p = params(6, 3, 16, 1);
        let (a, _) = build_native(&vs, &p).unwrap();
        let (b, _) = build_native(&vs, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops_and_k_respected() {
        let vs = DatasetSpec::UniformCube { n: 100, dim: 6 }.generate(6).vectors;
        let (lists, _) = build_native(&vs, &params(7, 3, 12, 1)).unwrap();
        for (p, list) in lists.iter().enumerate() {
            assert!(list.len() <= 7);
            assert!(list.iter().all(|nb| nb.index as usize != p));
            // Sorted, unique.
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key());
            }
        }
    }

    #[test]
    fn incremental_exploration_improves_over_none() {
        let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
            .generate(44)
            .vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let base = params(8, 2, 16, 0);
        let (none, _) = build_native(&vs, &base).unwrap();
        let inc = WknngParams {
            exploration_iters: 3,
            exploration_mode: crate::params::ExplorationMode::Incremental,
            ..base
        };
        let (inc_lists, _) = build_native(&vs, &inc).unwrap();
        let full = WknngParams { exploration_iters: 3, ..base };
        let (full_lists, _) = build_native(&vs, &full).unwrap();
        let (r0, ri, rf) =
            (recall(&none, &truth), recall(&inc_lists, &truth), recall(&full_lists, &truth));
        assert!(ri > r0, "incremental must help: {r0:.3} -> {ri:.3}");
        // Full explores a superset each round (not a strict theorem across
        // rounds, so allow a hair of slack).
        assert!(rf >= ri - 0.02, "full should not lose to incremental: {ri:.3} vs {rf:.3}");
        assert!(ri > 0.85, "incremental recall too low: {ri:.3}");
    }

    #[test]
    fn incremental_exploration_is_deterministic() {
        let vs = DatasetSpec::sift_like(150).generate(45).vectors;
        let p = WknngParams {
            exploration_iters: 2,
            exploration_mode: crate::params::ExplorationMode::Incremental,
            ..params(6, 3, 16, 2)
        };
        let (a, _) = build_native(&vs, &p).unwrap();
        let (b, _) = build_native(&vs, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn other_metrics_work_natively() {
        let vs = DatasetSpec::HypersphereShell { n: 60, dim: 8 }.generate(7).vectors;
        let p = WknngParams { metric: Metric::Cosine, ..params(4, 2, 64, 0) };
        let (lists, _) = build_native(&vs, &p).unwrap();
        let truth = exact_knn(&vs, 4, Metric::Cosine);
        // leaf 64 with n=60: single bucket, exact.
        assert_eq!(recall(&lists, &truth), 1.0);
    }
}
