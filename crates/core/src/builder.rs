//! The public entry point: a fluent builder over both backends.

use wknng_data::{Metric, Neighbor, VectorSet};
use wknng_simt::DeviceConfig;

use crate::error::KnngError;
use crate::events::BuildEvents;
use crate::native::{build_native, PhaseTimings};
use crate::params::{BuildPolicy, ExplorationMode, KernelVariant, QuantMode, WknngParams};
use crate::pipeline::{build_device_with_policy, DeviceReports};

/// A built approximate K-NNG plus the parameters that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Knng {
    /// Sorted neighbor lists, one per point.
    pub lists: Vec<Vec<Neighbor>>,
    /// Parameters of the build.
    pub params: WknngParams,
}

impl Knng {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the graph covers no points.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Neighbor list of point `p`.
    pub fn neighbors(&self, p: usize) -> &[Neighbor] {
        &self.lists[p]
    }

    /// Total directed edges in the graph.
    pub fn num_edges(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

/// Fluent builder for w-KNNG construction.
///
/// ```
/// use wknng_core::WknngBuilder;
/// use wknng_data::DatasetSpec;
///
/// let vs = DatasetSpec::sift_like(300).generate(7).vectors;
/// let (graph, timings) = WknngBuilder::new(10)
///     .trees(4)
///     .leaf_size(32)
///     .exploration(1)
///     .seed(99)
///     .build_native(&vs)
///     .unwrap();
/// assert_eq!(graph.len(), 300);
/// assert!(timings.total_ms() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WknngBuilder {
    params: WknngParams,
    policy: BuildPolicy,
}

impl WknngBuilder {
    /// Start a builder for a `k`-NN graph.
    pub fn new(k: usize) -> Self {
        WknngBuilder {
            params: WknngParams { k, ..WknngParams::default() },
            policy: BuildPolicy::default(),
        }
    }

    /// Number of RP trees (default 4).
    pub fn trees(mut self, t: usize) -> Self {
        self.params.num_trees = t;
        self
    }

    /// RP-tree leaf bucket size (default 64).
    pub fn leaf_size(mut self, l: usize) -> Self {
        self.params.leaf_size = l;
        self
    }

    /// Neighbors-of-neighbors refinement iterations (default 1).
    pub fn exploration(mut self, iters: usize) -> Self {
        self.params.exploration_iters = iters;
        self
    }

    /// Exploration candidate strategy (default [`ExplorationMode::Full`];
    /// the incremental mode applies to native builds only).
    pub fn exploration_mode(mut self, mode: ExplorationMode) -> Self {
        self.params.exploration_mode = mode;
        self
    }

    /// Split-direction distribution of the RP trees (default dense
    /// Gaussian; sparse-sign projections are ablated in experiment E12).
    pub fn projection(mut self, p: wknng_forest::ProjectionKind) -> Self {
        self.params.projection = p;
        self
    }

    /// Pick the kernel variant from the data's dimensionality (the paper's
    /// practical guidance backed by experiment E4).
    pub fn auto_variant(mut self, dim: usize) -> Self {
        self.params.variant = KernelVariant::auto_for_dim(dim);
        self
    }

    /// Kernel strategy for device builds (default tiled).
    pub fn variant(mut self, v: KernelVariant) -> Self {
        self.params.variant = v;
        self
    }

    /// Distance metric (native backend only; device builds require the
    /// default squared L2).
    pub fn metric(mut self, m: Metric) -> Self {
        self.params.metric = m;
        self
    }

    /// Build-time coordinate quantization (default none; native backend
    /// only). [`QuantMode::Pq`] requires the squared-L2 metric and re-scores
    /// the finished lists against exact coordinates.
    pub fn quant(mut self, q: QuantMode) -> Self {
        self.params.quant = q;
        self
    }

    /// RNG seed (default fixed; every build is deterministic).
    pub fn seed(mut self, s: u64) -> Self {
        self.params.seed = s;
        self
    }

    /// Degraded-execution policy for device builds (default: retry,
    /// degrade, audit and repair).
    pub fn policy(mut self, p: BuildPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Shorthand for [`BuildPolicy::strict()`]: fail fast on any fault
    /// instead of recovering.
    pub fn strict(self) -> Self {
        self.policy(BuildPolicy::strict())
    }

    /// The resolved parameter set.
    pub fn params(&self) -> WknngParams {
        self.params
    }

    /// The resolved build policy.
    pub fn build_policy(&self) -> BuildPolicy {
        self.policy
    }

    /// Build on the native (rayon) backend.
    pub fn build_native(&self, vs: &VectorSet) -> Result<(Knng, PhaseTimings), KnngError> {
        let (lists, timings) = build_native(vs, &self.params)?;
        Ok((Knng { lists, params: self.params }, timings))
    }

    /// Build on the simulated GPU, returning per-phase launch reports.
    pub fn build_device(
        &self,
        vs: &VectorSet,
        dev: &DeviceConfig,
    ) -> Result<(Knng, DeviceReports), KnngError> {
        let (knng, reports, _) = self.build_device_audited(vs, dev)?;
        Ok((knng, reports))
    }

    /// Build on the simulated GPU, additionally returning the
    /// [`BuildEvents`] log of every retry, degradation and repair the
    /// policy performed.
    pub fn build_device_audited(
        &self,
        vs: &VectorSet,
        dev: &DeviceConfig,
    ) -> Result<(Knng, DeviceReports, BuildEvents), KnngError> {
        let (lists, reports, events) =
            build_device_with_policy(vs, &self.params, &self.policy, dev)?;
        Ok((Knng { lists, params: self.params }, reports, events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    #[test]
    fn builder_threads_every_knob() {
        let b = WknngBuilder::new(7)
            .trees(3)
            .leaf_size(24)
            .exploration(2)
            .variant(KernelVariant::Atomic)
            .metric(Metric::Cosine)
            .quant(QuantMode::Sq8)
            .seed(5);
        let p = b.params();
        assert_eq!(p.k, 7);
        assert_eq!(p.num_trees, 3);
        assert_eq!(p.leaf_size, 24);
        assert_eq!(p.exploration_iters, 2);
        assert_eq!(p.variant, KernelVariant::Atomic);
        assert_eq!(p.metric, Metric::Cosine);
        assert_eq!(p.quant, QuantMode::Sq8);
        assert_eq!(p.seed, 5);
        assert_eq!(b.build_policy(), BuildPolicy::default());
        assert_eq!(b.strict().build_policy(), BuildPolicy::strict());
    }

    #[test]
    fn knng_accessors() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 4 }.generate(1).vectors;
        let (g, _) = WknngBuilder::new(3).trees(2).leaf_size(8).build_native(&vs).unwrap();
        assert_eq!(g.len(), 50);
        assert!(!g.is_empty());
        assert!(g.num_edges() <= 150);
        assert!(g.neighbors(0).len() <= 3);
    }

    #[test]
    fn builder_surfaces_errors() {
        let vs = DatasetSpec::UniformCube { n: 5, dim: 2 }.generate(0).vectors;
        assert!(WknngBuilder::new(10).build_native(&vs).is_err());
    }
}
