//! K-NNG representations and conversions between host lists and the packed
//! device slot arrays.

use wknng_data::{sort_neighbors, Neighbor};

use crate::heap::KnnList;

/// The packed slot value meaning "no neighbor yet".
///
/// `u64::MAX` unpacks to a NaN distance with index `u32::MAX`; every real
/// candidate (finite non-negative distance) packs strictly below it, so the
/// max-replacement insertion protocols treat empty slots as the worst
/// possible entry and fill them first.
pub const EMPTY_SLOT: u64 = u64::MAX;

/// A K-NN graph under construction on the host: one bounded candidate list
/// per point.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnGraph {
    k: usize,
    lists: Vec<KnnList>,
}

impl KnnGraph {
    /// An empty graph over `n` points with `k` neighbors per point.
    pub fn new(n: usize, k: usize) -> Self {
        KnnGraph { k, lists: (0..n).map(|_| KnnList::new(k)).collect() }
    }

    /// Neighbors-per-point bound.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True when the graph has no points.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// The candidate list of point `p`.
    pub fn list(&self, p: usize) -> &KnnList {
        &self.lists[p]
    }

    /// Mutable access to every list (the native backend's parallel update
    /// path).
    pub fn lists_mut(&mut self) -> &mut [KnnList] {
        &mut self.lists
    }

    /// Snapshot of the neighbor indices of every point (used by the
    /// exploration phase).
    pub fn index_snapshot(&self) -> Vec<Vec<u32>> {
        self.lists.iter().map(|l| l.indices().collect()).collect()
    }

    /// Convert into plain sorted neighbor lists.
    pub fn into_lists(self) -> Vec<Vec<Neighbor>> {
        self.lists.into_iter().map(KnnList::into_vec).collect()
    }
}

/// Decode a device slot buffer (`n × k` packed `u64`s) into sorted,
/// deduplicated neighbor lists.
///
/// Kernels keep slots unsorted and may, under concurrent insertion races,
/// leave a duplicate index; decoding sorts by `(dist, index)` and keeps the
/// first occurrence of each index, exactly like FAISS post-processes its
/// result heaps.
pub fn slots_to_lists(slots: &[u64], n: usize, k: usize) -> Vec<Vec<Neighbor>> {
    assert_eq!(slots.len(), n * k, "slot buffer shape mismatch");
    (0..n)
        .map(|p| {
            let mut list: Vec<Neighbor> = slots[p * k..(p + 1) * k]
                .iter()
                .filter(|&&s| s != EMPTY_SLOT)
                .map(|&s| Neighbor::unpack(s))
                .filter(|nb| nb.dist.is_finite()) // decode is total even on garbage
                .collect();
            sort_neighbors(&mut list);
            list.dedup_by_key(|nb| nb.index);
            list
        })
        .collect()
}

/// Add the reverse of every directed edge so greedy descent can escape weak
/// components (the caveat documented on
/// [`crate::search::SearchParams::entries`]), keeping each point's
/// *existing* neighbors and filling the remaining capacity (up to
/// `max_degree`, default `2k`) with the nearest reverse edges.
///
/// This differs from [`crate::metrics::symmetrize`], which caps by keeping
/// the globally nearest edges and may therefore *drop* forward edges of
/// hub-adjacent points: a navigable graph must keep its forward (out-)edges
/// — they are the descent directions — and only *add* escape routes. The
/// serve loader applies this as an opt-in preprocessing step.
pub fn augment_reverse(lists: &[Vec<Neighbor>], max_degree: Option<usize>) -> Vec<Vec<Neighbor>> {
    let k = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let cap = max_degree.unwrap_or(2 * k).max(k);
    // Collect the reverse edges per point, skipping ones already mutual.
    let mut reverse: Vec<Vec<Neighbor>> = vec![Vec::new(); lists.len()];
    for (i, list) in lists.iter().enumerate() {
        for nb in list {
            let j = nb.index as usize;
            if !lists[j].iter().any(|r| r.index as usize == i) {
                reverse[j].push(Neighbor::new(i as u32, nb.dist));
            }
        }
    }
    lists
        .iter()
        .zip(reverse)
        .map(|(fwd, mut rev)| {
            let mut out = fwd.clone();
            // Unique by construction: each point contributes at most one
            // directed edge to `j`, so `rev` holds distinct indices.
            sort_neighbors(&mut rev);
            for nb in rev {
                if out.len() >= cap {
                    break;
                }
                out.push(nb);
            }
            sort_neighbors(&mut out);
            out
        })
        .collect()
}

/// Encode host lists into a fresh `n × k` packed slot vector (EMPTY-padded).
pub fn lists_to_slots(lists: &[Vec<Neighbor>], k: usize) -> Vec<u64> {
    let mut slots = vec![EMPTY_SLOT; lists.len() * k];
    for (p, list) in lists.iter().enumerate() {
        for (i, nb) in list.iter().take(k).enumerate() {
            slots[p * k + i] = nb.pack();
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_worse_than_any_candidate() {
        let far = Neighbor::new(u32::MAX, f32::MAX).pack();
        assert!(far < EMPTY_SLOT);
        let inf = Neighbor::new(0, f32::INFINITY).pack();
        assert!(inf < EMPTY_SLOT);
    }

    #[test]
    fn graph_roundtrip() {
        let mut g = KnnGraph::new(3, 2);
        assert_eq!(g.len(), 3);
        assert_eq!(g.k(), 2);
        g.lists_mut()[0].insert(Neighbor::new(1, 1.0));
        g.lists_mut()[0].insert(Neighbor::new(2, 0.5));
        let snap = g.index_snapshot();
        assert_eq!(snap[0], vec![2, 1]);
        assert!(snap[1].is_empty());
        let lists = g.into_lists();
        assert_eq!(lists[0].len(), 2);
    }

    #[test]
    fn slots_decode_sorts_and_dedups() {
        let k = 4;
        let slots = vec![
            Neighbor::new(5, 2.0).pack(),
            Neighbor::new(1, 1.0).pack(),
            Neighbor::new(5, 2.0).pack(), // duplicate from an insertion race
            EMPTY_SLOT,
        ];
        let lists = slots_to_lists(&slots, 1, k);
        let idx: Vec<u32> = lists[0].iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![1, 5]);
    }

    #[test]
    fn lists_encode_pads_with_empty() {
        let lists = vec![vec![Neighbor::new(3, 1.5)], vec![]];
        let slots = lists_to_slots(&lists, 2);
        assert_eq!(slots.len(), 4);
        assert_eq!(Neighbor::unpack(slots[0]).index, 3);
        assert_eq!(slots[1], EMPTY_SLOT);
        assert_eq!(slots[2], EMPTY_SLOT);
        // Round trip.
        let back = slots_to_lists(&slots, 2, 2);
        assert_eq!(back[0], lists[0]);
        assert!(back[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn slot_shape_is_checked() {
        let _ = slots_to_lists(&[0u64; 5], 2, 3);
    }

    #[test]
    fn augment_adds_reverse_edges_without_dropping_forward_ones() {
        // 2 -> 0 with a large distance: symmetrize-with-cap would evict it
        // from 0's list; augment must keep 0's own forward edge AND add the
        // escape edge 0 -> 2 in the spare capacity.
        let lists = vec![
            vec![Neighbor::new(1, 1.0)],
            vec![Neighbor::new(0, 1.0)],
            vec![Neighbor::new(0, 50.0)],
        ];
        let aug = augment_reverse(&lists, Some(2));
        assert!(aug[0].iter().any(|e| e.index == 1), "forward edge kept");
        assert!(aug[0].iter().any(|e| e.index == 2 && e.dist == 50.0), "reverse edge added");
        assert!(aug[2].iter().any(|e| e.index == 0), "2's forward edge kept");
        for list in &aug {
            assert!(list.len() <= 2);
            for w in list.windows(2) {
                assert!(w[0].key() <= w[1].key(), "lists stay sorted");
            }
        }
    }

    #[test]
    fn augment_fills_capacity_nearest_first_and_skips_mutual_edges() {
        // Everyone points at 0; 0 has one forward edge (to 1, mutual).
        let lists = vec![
            vec![Neighbor::new(1, 1.0)],
            vec![Neighbor::new(0, 1.0)],
            vec![Neighbor::new(0, 3.0)],
            vec![Neighbor::new(0, 2.0)],
            vec![Neighbor::new(0, 9.0)],
        ];
        let aug = augment_reverse(&lists, Some(3));
        // 0 keeps its forward edge and gains the two *nearest* reverse
        // edges (3 at 2.0, 2 at 3.0); 4 at 9.0 does not fit.
        let idx: Vec<u32> = aug[0].iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![1, 3, 2]);
        // The mutual pair 0 <-> 1 must not be duplicated.
        assert_eq!(aug[1].len(), 1);
    }

    #[test]
    fn augment_connects_a_ring_and_tolerates_empty_graphs() {
        let lists = vec![
            vec![Neighbor::new(1, 1.0)],
            vec![Neighbor::new(2, 1.0)],
            vec![Neighbor::new(0, 1.0)],
        ];
        let aug = augment_reverse(&lists, None);
        let s = crate::metrics::graph_stats(&aug);
        assert_eq!(s.symmetry, 1.0);
        assert!(augment_reverse(&[], None).is_empty());
    }
}
