//! Greedy best-first search over a built K-NN graph.
//!
//! A K-NN graph doubles as a navigable index: out-of-sample queries descend
//! the graph from an entry point, expanding the most promising nodes. This
//! is the "similarity search" application family the paper's abstract
//! motivates, and the standard way K-NNG construction output is consumed by
//! systems like NN-descent-based search or HNSW's layer 0.

use wknng_data::{Metric, Neighbor, VectorSet};

use crate::builder::Knng;
use crate::heap::KnnList;

/// Parameters of a graph search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Result size.
    pub k: usize,
    /// Beam width (candidate pool); larger = more accurate, slower. Clamped
    /// up to `k`.
    pub beam: usize,
    /// Entry points: the search starts from `entries` scrambled point ids.
    /// Greedy descent cannot leave a weakly connected component, so graphs
    /// over strongly clustered data (check `graph_stats(...).components`)
    /// need at least one entry per component — raise this value or
    /// symmetrize/augment the graph for such data.
    pub entries: usize,
    /// Distance metric (must match the metric the graph was built with to
    /// be meaningful).
    pub metric: Metric,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams { k: 10, beam: 32, entries: 2, metric: Metric::SquaredL2 }
    }
}

/// Statistics of one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Points whose distance to the query was evaluated.
    pub distance_evals: usize,
    /// Nodes expanded (neighbor lists read).
    pub expansions: usize,
}

/// Greedy beam search for the `k` nearest indexed points to `query`.
///
/// Returns the result list (sorted ascending) and the work counters.
pub fn search(
    vs: &VectorSet,
    graph: &Knng,
    query: &[f32],
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchStats) {
    search_lists(vs, &graph.lists, query, params)
}

/// [`search`] over raw neighbor lists (no [`Knng`] wrapper) — the working
/// form used by incremental graph extension.
pub fn search_lists(
    vs: &VectorSet,
    lists: &[Vec<Neighbor>],
    query: &[f32],
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchStats) {
    let n = vs.len();
    assert_eq!(query.len(), vs.dim(), "query dimensionality mismatch");
    let beam_width = params.beam.max(params.k).max(1);
    let mut stats = SearchStats { distance_evals: 0, expansions: 0 };
    if n == 0 || lists.len() != n {
        return (Vec::new(), stats);
    }

    let mut visited = vec![false; n];
    let mut beam = KnnList::new(beam_width);
    // Frontier of candidates worth expanding, best-first.
    let mut frontier: Vec<Neighbor> = Vec::new();

    let entries = params.entries.clamp(1, n);
    for e in 0..entries {
        // Fibonacci-hash scramble: deterministic, but avoids the regular
        // stride aliasing with structured point orders (e.g. round-robin
        // cluster assignment) that a plain `e * n / entries` suffers from.
        let p = ((e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as usize;
        if !visited[p] {
            visited[p] = true;
            let d = params.metric.eval(query, vs.row(p));
            stats.distance_evals += 1;
            let nb = Neighbor::new(p as u32, d);
            beam.insert(nb);
            frontier.push(nb);
        }
    }

    while let Some(pos) = frontier
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.key().partial_cmp(&b.key()).expect("finite"))
        .map(|(i, _)| i)
    {
        let cur = frontier.swap_remove(pos);
        // Stop expanding once the best frontier entry cannot improve a full
        // beam (the standard greedy termination).
        if beam.len() == beam_width {
            if let Some(worst) = beam.worst() {
                if cur.key() > worst.key() {
                    break;
                }
            }
        }
        stats.expansions += 1;
        for nb in &lists[cur.index as usize] {
            let j = nb.index as usize;
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let d = params.metric.eval(query, vs.row(j));
            stats.distance_evals += 1;
            let cand = Neighbor::new(j as u32, d);
            if beam.insert(cand) {
                frontier.push(cand);
            }
        }
    }

    let mut result = beam.into_vec();
    result.truncate(params.k);
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WknngBuilder;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec};

    fn indexed(n: usize) -> (VectorSet, Knng) {
        // Manifold data gives a *connected* K-NN graph; greedy search cannot
        // cross components (see the doc note on `entries`).
        let vs =
            DatasetSpec::Manifold { n, ambient_dim: 24, intrinsic_dim: 3 }.generate(55).vectors;
        let (g, _) = WknngBuilder::new(12)
            .trees(6)
            .leaf_size(24)
            .exploration(2)
            .seed(56)
            .build_native(&vs)
            .expect("valid");
        (vs, g)
    }

    #[test]
    fn finds_indexed_points_exactly() {
        let (vs, g) = indexed(300);
        // Query with an indexed point: it must come back first at distance 0.
        let (res, stats) = search(&vs, &g, vs.row(17), &SearchParams::default());
        assert_eq!(res[0].index, 17);
        assert_eq!(res[0].dist, 0.0);
        assert!(stats.distance_evals < 300, "search must not scan everything");
        assert!(stats.expansions > 0);
    }

    #[test]
    fn out_of_sample_queries_reach_high_recall() {
        let (vs, g) = indexed(400);
        let mut hits = 0;
        let mut total = 0;
        for q in 0..30 {
            let base: Vec<f32> = vs.row(q * 13 % 400).iter().map(|v| v + 1e-3).collect();
            let (res, _) = search(&vs, &g, &base, &SearchParams::default());
            // Exact answer.
            let mut all: Vec<Neighbor> = (0..400)
                .map(|j| Neighbor::new(j as u32, Metric::SquaredL2.eval(&base, vs.row(j))))
                .collect();
            wknng_data::sort_neighbors(&mut all);
            all.truncate(10);
            total += all.len();
            for e in &all {
                if res.iter().any(|r| r.index == e.index) {
                    hits += 1;
                }
            }
        }
        let r = hits as f64 / total as f64;
        assert!(r > 0.9, "graph-search recall {r:.3}");
    }

    #[test]
    fn beam_width_trades_work_for_accuracy() {
        let (vs, g) = indexed(400);
        let q: Vec<f32> = vs.row(123).iter().map(|v| v + 5e-3).collect();
        let narrow = SearchParams { beam: 10, ..SearchParams::default() };
        let wide = SearchParams { beam: 64, ..SearchParams::default() };
        let (_, sn) = search(&vs, &g, &q, &narrow);
        let (_, sw) = search(&vs, &g, &q, &wide);
        assert!(sw.distance_evals > sn.distance_evals);
    }

    #[test]
    fn search_results_agree_with_graph_recall() {
        let (vs, g) = indexed(300);
        let truth = exact_knn(&vs, 12, Metric::SquaredL2);
        assert!(recall(&g.lists, &truth) > 0.9, "precondition: good graph");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_query_dim_panics() {
        let (vs, g) = indexed(50);
        let _ = search(&vs, &g, &[0.0; 3], &SearchParams::default());
    }

    #[test]
    fn degenerate_graph_returns_empty() {
        let vs = DatasetSpec::UniformCube { n: 10, dim: 2 }.generate(1).vectors;
        let g = Knng { lists: vec![], params: crate::params::WknngParams::default() };
        let (res, _) = search(&vs, &g, vs.row(0), &SearchParams::default());
        assert!(res.is_empty());
    }
}
