//! Greedy best-first search over a built K-NN graph.
//!
//! A K-NN graph doubles as a navigable index: out-of-sample queries descend
//! the graph from an entry point, expanding the most promising nodes. This
//! is the "similarity search" application family the paper's abstract
//! motivates, and the standard way K-NNG construction output is consumed by
//! systems like NN-descent-based search or HNSW's layer 0.

use wknng_data::{Metric, Neighbor, VectorSet};

use crate::builder::Knng;
use crate::error::KnngError;
use crate::heap::KnnList;

/// Parameters of a graph search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchParams {
    /// Result size.
    pub k: usize,
    /// Beam width (candidate pool); larger = more accurate, slower. Clamped
    /// up to `k`.
    pub beam: usize,
    /// Entry points: the search starts from `entries` scrambled point ids.
    /// Greedy descent cannot leave a weakly connected component, so graphs
    /// over strongly clustered data (check `graph_stats(...).components`)
    /// need at least one entry per component — raise this value or add
    /// reverse edges with [`crate::graph::augment_reverse`] (what the serve
    /// loader's augment option does) for such data.
    pub entries: usize,
    /// Distance metric (must match the metric the graph was built with to
    /// be meaningful).
    pub metric: Metric,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams { k: 10, beam: 32, entries: 2, metric: Metric::SquaredL2 }
    }
}

impl SearchParams {
    /// Check the parameters against an index of `n` points, returning the
    /// normalized form: `k >= 1`, `beam >= k` and `entries >= 1` are typed
    /// errors (instead of the silent clamping [`search`] applies for
    /// backward compatibility), and `entries > n` — where the scrambled
    /// entry selection used to alias and silently seed fewer points than
    /// requested — is clamped to `n`, which turns the search into a full
    /// scan.
    pub fn validated(mut self, n: usize) -> Result<SearchParams, KnngError> {
        if self.k == 0 {
            return Err(KnngError::ZeroK);
        }
        if self.beam < self.k {
            return Err(KnngError::BeamTooNarrow { beam: self.beam, k: self.k });
        }
        if self.entries == 0 {
            return Err(KnngError::ZeroEntries);
        }
        self.entries = self.entries.min(n.max(1));
        Ok(self)
    }

    /// One step down the **brownout ladder**: the serving layer's analogue
    /// of [`crate::KernelVariant::degraded`]'s tiled → atomic → basic chain.
    /// Each step trades recall for work so an overloaded server can keep
    /// p99 bounded instead of collapsing: the beam halves toward its floor
    /// (`k`), then the entry probes drop to one, then `None` — there is
    /// nothing cheaper than a single-entry `beam == k` descent.
    ///
    /// Every step preserves [`SearchParams::validated`]'s invariants
    /// (`beam >= k`, `entries >= 1`), so a degraded parameter set is always
    /// servable.
    pub fn degraded(&self) -> Option<SearchParams> {
        let floor = self.k.max(1);
        let narrowed = (self.beam / 2).max(floor);
        if narrowed < self.beam {
            return Some(SearchParams { beam: narrowed, ..*self });
        }
        if self.entries > 1 {
            return Some(SearchParams { entries: 1, ..*self });
        }
        None
    }
}

/// The scrambled `e`-th entry point over `n` points (Fibonacci-hash
/// scramble): deterministic, but avoids the regular stride aliasing with
/// structured point orders (e.g. round-robin cluster assignment) that a
/// plain `e * n / entries` suffers from. Shared by the host search and the
/// batched device kernel so both seed identical descents.
pub(crate) fn entry_point(e: usize, n: usize) -> usize {
    ((e as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64) as usize
}

/// Statistics of one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Points whose distance to the query was evaluated.
    pub distance_evals: usize,
    /// Nodes expanded (neighbor lists read).
    pub expansions: usize,
}

/// Greedy beam search for the `k` nearest indexed points to `query`.
///
/// Returns the result list (sorted ascending) and the work counters.
pub fn search(
    vs: &VectorSet,
    graph: &Knng,
    query: &[f32],
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchStats) {
    search_lists(vs, &graph.lists, query, params)
}

/// [`search`] over raw neighbor lists (no [`Knng`] wrapper) — the working
/// form used by incremental graph extension.
pub fn search_lists(
    vs: &VectorSet,
    lists: &[Vec<Neighbor>],
    query: &[f32],
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchStats) {
    // Query-vs-point distances go through the dispatched SIMD/scalar kernel;
    // resolving the mode here (rather than passing `&dyn` down) keeps the
    // per-candidate evaluation a direct, inlinable call.
    match wknng_data::kernel_mode() {
        wknng_data::KernelMode::ForceScalar => {
            search_lists_with(&wknng_data::ScalarKernel, vs, lists, query, params)
        }
        wknng_data::KernelMode::Auto => {
            search_lists_with(&wknng_data::SimdKernel, vs, lists, query, params)
        }
    }
}

/// [`search_lists`] with an explicit distance kernel — the monomorphized
/// body both [`search_lists`] arms dispatch into. (The device beam kernel
/// reduces its lane distances through the same dispatched host kernel, so
/// device results stay bit-for-bit equal to this host reference whichever
/// implementation the runtime picks.)
pub(crate) fn search_lists_with<K: wknng_data::DistanceKernel + ?Sized>(
    kern: &K,
    vs: &VectorSet,
    lists: &[Vec<Neighbor>],
    query: &[f32],
    params: &SearchParams,
) -> (Vec<Neighbor>, SearchStats) {
    let n = vs.len();
    assert_eq!(query.len(), vs.dim(), "query dimensionality mismatch");
    let beam_width = params.beam.max(params.k).max(1);
    let mut stats = SearchStats { distance_evals: 0, expansions: 0 };
    if n == 0 || lists.len() != n {
        return (Vec::new(), stats);
    }

    let mut visited = vec![false; n];
    let mut beam = KnnList::new(beam_width);
    // Frontier of candidates worth expanding, best-first.
    let mut frontier: Vec<Neighbor> = Vec::new();

    let entries = params.entries.clamp(1, n);
    for e in 0..entries {
        // The scramble can alias (distinct `e` mapping to one point,
        // guaranteed once `entries` approaches `n`); probing forward to the
        // next unseeded point keeps the number of distinct entry points
        // exactly as requested. Terminates: fewer than `n` points are
        // visited when the probe starts.
        //
        // A point with an *empty* neighbor list (a tombstoned slot of a
        // mutable index) cannot seed a frontier: if every entry landed on
        // one, the search would die at depth zero. One probe cycle prefers
        // unseeded points that have edges; graphs without empty lists take
        // the first unseeded point exactly as before (bit-identical).
        let mut p = entry_point(e, n);
        for _ in 0..n {
            if !visited[p] && !lists[p].is_empty() {
                break;
            }
            p = (p + 1) % n;
        }
        while visited[p] {
            p = (p + 1) % n;
        }
        visited[p] = true;
        let d = kern.eval(params.metric, query, vs.row(p));
        stats.distance_evals += 1;
        let nb = Neighbor::new(p as u32, d);
        beam.insert(nb);
        frontier.push(nb);
    }

    while let Some(pos) = frontier
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.key().partial_cmp(&b.key()).expect("finite"))
        .map(|(i, _)| i)
    {
        let cur = frontier.swap_remove(pos);
        // Stop expanding once the best frontier entry cannot improve a full
        // beam (the standard greedy termination).
        if beam.len() == beam_width {
            if let Some(worst) = beam.worst() {
                if cur.key() > worst.key() {
                    break;
                }
            }
        }
        stats.expansions += 1;
        for nb in &lists[cur.index as usize] {
            let j = nb.index as usize;
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let d = kern.eval(params.metric, query, vs.row(j));
            stats.distance_evals += 1;
            let cand = Neighbor::new(j as u32, d);
            if beam.insert(cand) {
                frontier.push(cand);
            }
        }
    }

    let mut result = beam.into_vec();
    result.truncate(params.k);
    (result, stats)
}

/// [`search`] with parameter validation: rejects malformed
/// [`SearchParams`] and dimension mismatches with typed errors instead of
/// clamping or panicking. This is the entry point serving layers should use.
pub fn search_checked(
    vs: &VectorSet,
    graph: &Knng,
    query: &[f32],
    params: &SearchParams,
) -> Result<(Vec<Neighbor>, SearchStats), KnngError> {
    if query.len() != vs.dim() {
        return Err(KnngError::Data(wknng_data::DataError::RaggedBuffer {
            len: query.len(),
            dim: vs.dim(),
        }));
    }
    let params = params.validated(vs.len())?;
    Ok(search_lists(vs, &graph.lists, query, &params))
}

/// Search one batch of queries sequentially through [`search_lists`].
///
/// This is the host reference the batched device kernel
/// ([`crate::kernels::beam`]) and the serving engine are validated against:
/// queries are independent, so batching cannot change any individual result.
pub fn search_batch(
    vs: &VectorSet,
    graph: &Knng,
    queries: &VectorSet,
    params: &SearchParams,
) -> Vec<(Vec<Neighbor>, SearchStats)> {
    assert_eq!(queries.dim(), vs.dim(), "query dimensionality mismatch");
    (0..queries.len()).map(|q| search_lists(vs, &graph.lists, queries.row(q), params)).collect()
}

#[cfg(test)]
mod brownout_tests {
    use super::*;

    #[test]
    fn brownout_ladder_halves_beam_then_drops_entries_then_ends() {
        let base = SearchParams { k: 10, beam: 32, entries: 2, metric: Metric::SquaredL2 };
        let s1 = base.degraded().unwrap();
        assert_eq!((s1.beam, s1.entries), (16, 2));
        let s2 = s1.degraded().unwrap();
        assert_eq!((s2.beam, s2.entries), (10, 2), "beam floors at k");
        let s3 = s2.degraded().unwrap();
        assert_eq!((s3.beam, s3.entries), (10, 1));
        assert_eq!(s3.degraded(), None, "nothing cheaper than single-entry beam == k");
    }

    #[test]
    fn every_brownout_step_stays_valid() {
        let mut p = SearchParams { k: 7, beam: 100, entries: 5, metric: Metric::SquaredL2 };
        let mut steps = 0;
        while let Some(d) = p.degraded() {
            assert!(d.validated(1000).is_ok(), "step {steps} must stay servable: {d:?}");
            assert!(
                d.beam < p.beam || d.entries < p.entries,
                "each step must strictly reduce work"
            );
            assert_eq!(d.k, p.k, "brownout never shrinks the result size");
            p = d;
            steps += 1;
        }
        assert!(steps >= 3, "a wide config has a multi-step ladder, got {steps}");
        assert_eq!((p.beam, p.entries), (7, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::WknngBuilder;
    use crate::recall::recall;
    use wknng_data::{exact_knn, DatasetSpec};

    fn indexed(n: usize) -> (VectorSet, Knng) {
        // Manifold data gives a *connected* K-NN graph; greedy search cannot
        // cross components (see the doc note on `entries`).
        let vs =
            DatasetSpec::Manifold { n, ambient_dim: 24, intrinsic_dim: 3 }.generate(55).vectors;
        let (g, _) = WknngBuilder::new(12)
            .trees(6)
            .leaf_size(24)
            .exploration(2)
            .seed(56)
            .build_native(&vs)
            .expect("valid");
        (vs, g)
    }

    #[test]
    fn finds_indexed_points_exactly() {
        let (vs, g) = indexed(300);
        // Query with an indexed point: it must come back first at distance 0.
        let (res, stats) = search(&vs, &g, vs.row(17), &SearchParams::default());
        assert_eq!(res[0].index, 17);
        assert_eq!(res[0].dist, 0.0);
        assert!(stats.distance_evals < 300, "search must not scan everything");
        assert!(stats.expansions > 0);
    }

    #[test]
    fn out_of_sample_queries_reach_high_recall() {
        let (vs, g) = indexed(400);
        let mut hits = 0;
        let mut total = 0;
        for q in 0..30 {
            let base: Vec<f32> = vs.row(q * 13 % 400).iter().map(|v| v + 1e-3).collect();
            let (res, _) = search(&vs, &g, &base, &SearchParams::default());
            // Exact answer.
            let mut all: Vec<Neighbor> = (0..400)
                .map(|j| Neighbor::new(j as u32, Metric::SquaredL2.eval(&base, vs.row(j))))
                .collect();
            wknng_data::sort_neighbors(&mut all);
            all.truncate(10);
            total += all.len();
            for e in &all {
                if res.iter().any(|r| r.index == e.index) {
                    hits += 1;
                }
            }
        }
        let r = hits as f64 / total as f64;
        assert!(r > 0.9, "graph-search recall {r:.3}");
    }

    #[test]
    fn beam_width_trades_work_for_accuracy() {
        let (vs, g) = indexed(400);
        let q: Vec<f32> = vs.row(123).iter().map(|v| v + 5e-3).collect();
        let narrow = SearchParams { beam: 10, ..SearchParams::default() };
        let wide = SearchParams { beam: 64, ..SearchParams::default() };
        let (_, sn) = search(&vs, &g, &q, &narrow);
        let (_, sw) = search(&vs, &g, &q, &wide);
        assert!(sw.distance_evals > sn.distance_evals);
    }

    #[test]
    fn search_results_agree_with_graph_recall() {
        let (vs, g) = indexed(300);
        let truth = exact_knn(&vs, 12, Metric::SquaredL2);
        assert!(recall(&g.lists, &truth) > 0.9, "precondition: good graph");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_query_dim_panics() {
        let (vs, g) = indexed(50);
        let _ = search(&vs, &g, &[0.0; 3], &SearchParams::default());
    }

    #[test]
    fn validated_rejects_malformed_params() {
        use crate::error::KnngError;
        let p = SearchParams::default();
        assert!(matches!(SearchParams { k: 0, ..p }.validated(100), Err(KnngError::ZeroK)));
        assert!(matches!(
            SearchParams { k: 10, beam: 4, ..p }.validated(100),
            Err(KnngError::BeamTooNarrow { beam: 4, k: 10 })
        ));
        assert!(matches!(
            SearchParams { entries: 0, ..p }.validated(100),
            Err(KnngError::ZeroEntries)
        ));
        // entries > n clamps to n (full scan), the fixed edge case.
        let v = SearchParams { entries: 500, ..p }.validated(100).unwrap();
        assert_eq!(v.entries, 100);
        // Well-formed params normalize to themselves.
        assert_eq!(p.validated(100).unwrap(), p);
    }

    #[test]
    fn entries_equal_to_n_seed_every_point() {
        // With entries == n the search must degenerate into a full scan:
        // every point evaluated exactly once despite scramble collisions.
        let (vs, g) = indexed(300);
        let params = SearchParams { entries: 300, ..SearchParams::default() };
        let (res, stats) = search(&vs, &g, vs.row(5), &params);
        assert_eq!(stats.distance_evals, 300);
        assert_eq!(res[0].index, 5);
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn checked_search_rejects_bad_inputs_with_typed_errors() {
        let (vs, g) = indexed(80);
        let q = vs.row(3).to_vec();
        let ok = search_checked(&vs, &g, &q, &SearchParams::default()).unwrap();
        assert_eq!(ok.0[0].index, 3);
        let bad_dim = search_checked(&vs, &g, &[0.0; 2], &SearchParams::default());
        assert!(matches!(bad_dim, Err(crate::error::KnngError::Data(_))));
        let bad_beam = SearchParams { k: 8, beam: 2, ..SearchParams::default() };
        assert!(search_checked(&vs, &g, &q, &bad_beam).is_err());
    }

    #[test]
    fn batched_search_equals_sequential_searches() {
        let (vs, g) = indexed(250);
        let queries =
            DatasetSpec::Manifold { n: 40, ambient_dim: 24, intrinsic_dim: 3 }.generate(77).vectors;
        let params = SearchParams::default();
        let batched = search_batch(&vs, &g, &queries, &params);
        assert_eq!(batched.len(), 40);
        for (q, got) in batched.iter().enumerate() {
            let (res, stats) = search(&vs, &g, queries.row(q), &params);
            assert_eq!(got.0, res, "query {q}");
            assert_eq!(got.1, stats, "query {q}");
        }
    }

    #[test]
    fn degenerate_graph_returns_empty() {
        let vs = DatasetSpec::UniformCube { n: 10, dim: 2 }.generate(1).vectors;
        let g = Knng { lists: vec![], params: crate::params::WknngParams::default() };
        let (res, _) = search(&vs, &g, vs.row(0), &SearchParams::default());
        assert!(res.is_empty());
    }

    #[test]
    fn empty_list_entry_points_are_probed_past() {
        // n = 5 makes both default entries alias to point 0 (the scramble
        // constant is divisible by 5), so the deterministic seeds are 0 and
        // — after the alias probe — 1. Tombstone exactly those two (empty
        // lists, no incoming edges): seeding must skip to live points
        // instead of dying at depth zero with an empty frontier.
        let vs =
            VectorSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let mut lists = wknng_data::exact_knn(&vs, 2, Metric::SquaredL2);
        for l in &mut lists {
            l.retain(|nb| nb.index > 1);
        }
        lists[0].clear();
        lists[1].clear();
        let params = SearchParams { k: 2, beam: 4, entries: 2, ..SearchParams::default() };
        let (res, _) = search_lists(&vs, &lists, &[2.1], &params);
        assert_eq!(res.len(), 2, "live entries must seed the frontier: {res:?}");
        assert!(res.iter().all(|nb| nb.index > 1), "tombstones cannot be answers: {res:?}");
        assert_eq!(res[0].index, 2);
        // All-empty lists stay a graceful degenerate case (entry points
        // only, no expansions) rather than an infinite probe.
        let empty: Vec<Vec<Neighbor>> = vec![Vec::new(); 5];
        let (res, stats) = search_lists(&vs, &empty, &[2.1], &params);
        assert_eq!(res.len(), 2, "entries alone still answer");
        assert_eq!(stats.expansions, 2, "nothing to expand");
    }
}
