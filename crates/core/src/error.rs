//! Typed errors for w-KNNG construction.

use std::fmt;

use wknng_data::DataError;
use wknng_forest::ForestError;

use crate::events::BuildPhase;

/// Errors produced by the w-KNNG builders.
#[derive(Debug, Clone, PartialEq)]
pub enum KnngError {
    /// `k` must be at least 1.
    ZeroK,
    /// `k` must be smaller than the number of points.
    KTooLarge {
        /// Requested k.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// The device kernels implement squared L2 only (the paper's metric).
    UnsupportedDeviceMetric(wknng_data::Metric),
    /// PQ-ADC distance tables are squared-L2 constructions; other metrics
    /// must build unquantized.
    UnsupportedQuantMetric(wknng_data::Metric),
    /// A PQ build needs at least one subquantizer.
    ZeroSubquantizers,
    /// A search beam narrower than `k` cannot hold a full result list.
    BeamTooNarrow {
        /// Requested beam width.
        beam: usize,
        /// Requested result size.
        k: usize,
    },
    /// A search needs at least one entry point.
    ZeroEntries,
    /// The tiled kernel must stage a whole bucket in shared memory; this
    /// leaf size does not fit the selected device. Only reachable when
    /// degradation is disabled ([`crate::params::BuildPolicy::strict()`]) —
    /// the default policy falls back to the atomic kernel instead.
    LeafTooLargeForTiled {
        /// Requested leaf size.
        leaf: usize,
        /// Largest bucket the device's shared memory can stage.
        max: usize,
    },
    /// A kernel launch kept failing after exhausting the retry budget of the
    /// active [`crate::params::BuildPolicy`].
    LaunchFailed {
        /// Pipeline phase the launch belonged to.
        phase: BuildPhase,
        /// Launch attempts made before giving up.
        attempts: u32,
    },
    /// The post-build audit found corrupted slot data and the policy does
    /// not repair ([`crate::params::AuditLevel::Check`]).
    AuditFailed {
        /// Invariant violations found.
        violations: usize,
        /// Lists repaired before giving up (always 0 under `Check`).
        repaired: usize,
    },
    /// A point id addressed a row outside the graph (mutation paths:
    /// deleting or patching a point that does not exist).
    PointOutOfRange {
        /// Offending point id.
        id: u32,
        /// Number of points in the graph.
        n: usize,
    },
    /// Error from the data substrate.
    Data(DataError),
    /// Error from the forest substrate.
    Forest(ForestError),
}

impl fmt::Display for KnngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnngError::ZeroK => write!(f, "k must be at least 1"),
            KnngError::KTooLarge { k, n } => {
                write!(f, "k = {k} needs at least k + 1 = {} points, got {n}", k + 1)
            }
            KnngError::UnsupportedDeviceMetric(m) => {
                write!(f, "device kernels support SquaredL2 only, got {m:?}")
            }
            KnngError::UnsupportedQuantMetric(m) => {
                write!(f, "PQ-ADC builds support SquaredL2 only, got {m:?}")
            }
            KnngError::ZeroSubquantizers => {
                write!(f, "PQ needs at least one subquantizer (m >= 1)")
            }
            KnngError::BeamTooNarrow { beam, k } => {
                write!(f, "search beam {beam} is narrower than k = {k}")
            }
            KnngError::ZeroEntries => write!(f, "search needs at least one entry point"),
            KnngError::LeafTooLargeForTiled { leaf, max } => {
                write!(
                    f,
                    "tiled kernel: leaf_size {leaf} exceeds shared-memory capacity ({max} points)"
                )
            }
            KnngError::LaunchFailed { phase, attempts } => {
                write!(f, "{phase} kernel launch failed after {attempts} attempts")
            }
            KnngError::AuditFailed { violations, repaired } => write!(
                f,
                "graph audit failed: {violations} invariant violations ({repaired} lists repaired)"
            ),
            KnngError::PointOutOfRange { id, n } => {
                write!(f, "point id {id} is out of range for a graph of {n} points")
            }
            KnngError::Data(e) => write!(f, "data error: {e}"),
            KnngError::Forest(e) => write!(f, "forest error: {e}"),
        }
    }
}

impl std::error::Error for KnngError {}

impl From<DataError> for KnngError {
    fn from(e: DataError) -> Self {
        KnngError::Data(e)
    }
}

impl From<ForestError> for KnngError {
    fn from(e: ForestError) -> Self {
        KnngError::Forest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(KnngError::ZeroK.to_string().contains("at least 1"));
        assert!(KnngError::KTooLarge { k: 5, n: 3 }.to_string().contains("k = 5"));
        assert!(KnngError::UnsupportedDeviceMetric(wknng_data::Metric::Cosine)
            .to_string()
            .contains("SquaredL2"));
        let e: KnngError = DataError::ZeroDimension.into();
        assert!(matches!(e, KnngError::Data(_)));
        let e: KnngError = ForestError::NoTrees.into();
        assert!(matches!(e, KnngError::Forest(_)));
    }

    #[test]
    fn display_names_out_of_range_point() {
        let e = KnngError::PointOutOfRange { id: 99, n: 50 };
        let s = e.to_string();
        assert!(s.contains("99"), "{s}");
        assert!(s.contains("50"), "{s}");
    }

    #[test]
    fn display_covers_search_param_variants() {
        let e = KnngError::BeamTooNarrow { beam: 4, k: 10 };
        assert!(e.to_string().contains("beam 4"), "{e}");
        assert!(KnngError::ZeroEntries.to_string().contains("entry point"));
    }

    #[test]
    fn display_names_failure_phase_and_attempts() {
        let e = KnngError::LaunchFailed { phase: BuildPhase::Bucket, attempts: 4 };
        let s = e.to_string();
        assert!(s.contains("bucket"), "{s}");
        assert!(s.contains("4 attempts"), "{s}");
        let e = KnngError::LaunchFailed { phase: BuildPhase::Explore, attempts: 1 };
        assert!(e.to_string().contains("explore"));
    }

    #[test]
    fn display_counts_audit_outcome() {
        let e = KnngError::AuditFailed { violations: 3, repaired: 0 };
        let s = e.to_string();
        assert!(s.contains("3 invariant violations"), "{s}");
        assert!(s.contains("0 lists repaired"), "{s}");
    }
}
