//! Typed errors for w-KNNG construction.

use std::fmt;

use wknng_data::DataError;
use wknng_forest::ForestError;

/// Errors produced by the w-KNNG builders.
#[derive(Debug, Clone, PartialEq)]
pub enum KnngError {
    /// `k` must be at least 1.
    ZeroK,
    /// `k` must be smaller than the number of points.
    KTooLarge {
        /// Requested k.
        k: usize,
        /// Number of points available.
        n: usize,
    },
    /// The device kernels implement squared L2 only (the paper's metric).
    UnsupportedDeviceMetric(wknng_data::Metric),
    /// The tiled kernel must stage a whole bucket in shared memory; this
    /// leaf size does not fit the selected device.
    LeafTooLargeForTiled {
        /// Requested leaf size.
        leaf: usize,
        /// Largest bucket the device's shared memory can stage.
        max: usize,
    },
    /// Error from the data substrate.
    Data(DataError),
    /// Error from the forest substrate.
    Forest(ForestError),
}

impl fmt::Display for KnngError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnngError::ZeroK => write!(f, "k must be at least 1"),
            KnngError::KTooLarge { k, n } => {
                write!(f, "k = {k} needs at least k + 1 = {} points, got {n}", k + 1)
            }
            KnngError::UnsupportedDeviceMetric(m) => {
                write!(f, "device kernels support SquaredL2 only, got {m:?}")
            }
            KnngError::LeafTooLargeForTiled { leaf, max } => {
                write!(f, "tiled kernel: leaf_size {leaf} exceeds shared-memory capacity ({max} points)")
            }
            KnngError::Data(e) => write!(f, "data error: {e}"),
            KnngError::Forest(e) => write!(f, "forest error: {e}"),
        }
    }
}

impl std::error::Error for KnngError {}

impl From<DataError> for KnngError {
    fn from(e: DataError) -> Self {
        KnngError::Data(e)
    }
}

impl From<ForestError> for KnngError {
    fn from(e: ForestError) -> Self {
        KnngError::Forest(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(KnngError::ZeroK.to_string().contains("at least 1"));
        assert!(KnngError::KTooLarge { k: 5, n: 3 }.to_string().contains("k = 5"));
        assert!(KnngError::UnsupportedDeviceMetric(wknng_data::Metric::Cosine)
            .to_string()
            .contains("SquaredL2"));
        let e: KnngError = DataError::ZeroDimension.into();
        assert!(matches!(e, KnngError::Data(_)));
        let e: KnngError = ForestError::NoTrees.into();
        assert!(matches!(e, KnngError::Forest(_)));
    }
}
