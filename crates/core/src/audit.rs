//! Post-build graph integrity auditing and bounded brute-force repair.
//!
//! The paper's kernels maintain k-NN sets as packed `(dist, index)` slots in
//! global memory — exactly the state that silently corrupts when a kernel
//! misbehaves or a memory cell flips. This module validates the invariants
//! that state must satisfy and re-derives lists that lost them.
//!
//! Two audit surfaces exist because decoding hides corruption:
//! [`slots_to_lists`](crate::graph::slots_to_lists) filters non-finite
//! distances and deduplicates, so a flipped bit can vanish from the decoded
//! graph while still poisoning the slot array every later kernel reads.
//! [`audit_slots`] therefore inspects the **raw** slot buffer (what device
//! code sees); [`audit_graph`] checks a decoded host graph (what callers
//! see, e.g. one loaded from disk).
//!
//! Not every violation is corruption. The atomic insertion protocol can
//! legitimately race two lanes into duplicate entries (decoding dedups
//! them), and a sparse bucket legitimately under-fills its lists — those are
//! recorded as informational. Corruption is what no correct execution can
//! produce: a self edge, an index outside the point set, a non-finite or
//! negative distance in an occupied slot, or a stored distance that
//! disagrees with the recomputed one.

use std::collections::BTreeSet;

use wknng_data::{sort_neighbors, Metric, Neighbor, VectorSet};

use crate::graph::EMPTY_SLOT;

/// Relative tolerance for stored-vs-recomputed distances: the device warp
/// reduction and the host kernel accumulate in different orders, so f32
/// results differ in the last bits, never by parts per thousand.
const DIST_RTOL: f32 = 1e-3;

/// One invariant a k-NN list can violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A point lists itself as its own neighbor.
    SelfEdge,
    /// A neighbor index at or beyond the number of points.
    IndexOutOfRange,
    /// A NaN or infinite distance in an occupied slot.
    NonFinite,
    /// A negative distance (impossible for squared L2).
    NegativeDistance,
    /// The stored distance disagrees with the recomputed one.
    DistanceMismatch,
    /// The same neighbor index appears more than once (informational for
    /// raw slots: atomic insertion races can duplicate legitimately).
    DuplicateEdge,
    /// Fewer than `k` entries (informational for raw slots: sparse buckets
    /// legitimately under-fill).
    ShortList,
    /// A decoded list's distances are not sorted ascending.
    Unsorted,
}

impl ViolationKind {
    /// True when no correct execution can produce this violation in a raw
    /// slot array — the triggers for repair.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            ViolationKind::SelfEdge
                | ViolationKind::IndexOutOfRange
                | ViolationKind::NonFinite
                | ViolationKind::NegativeDistance
                | ViolationKind::DistanceMismatch
        )
    }
}

/// One audit finding, attributed to a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuditViolation {
    /// The point whose list violates the invariant.
    pub point: usize,
    /// What is wrong with it.
    pub kind: ViolationKind,
}

/// Everything an audit pass found.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// All findings, in point order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Total findings, informational ones included.
    pub fn total(&self) -> usize {
        self.violations.len()
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Points with at least one corruption-class violation, deduplicated.
    pub fn corrupted_points(&self) -> BTreeSet<usize> {
        self.violations.iter().filter(|v| v.kind.is_corruption()).map(|v| v.point).collect()
    }

    /// Number of corruption-class findings.
    pub fn corruption_count(&self) -> usize {
        self.violations.iter().filter(|v| v.kind.is_corruption()).count()
    }
}

/// Audit a raw `n × k` packed slot buffer against the point set that
/// produced it. Empty slots (`EMPTY_SLOT` exactly) are skipped; everything
/// else must decode to a valid edge whose distance matches a recomputation.
pub fn audit_slots(slots: &[u64], vs: &VectorSet, k: usize, metric: Metric) -> AuditReport {
    let n = vs.len();
    assert_eq!(slots.len(), n * k, "slot buffer shape mismatch");
    let mut report = AuditReport::default();
    for p in 0..n {
        let row = &slots[p * k..(p + 1) * k];
        let mut seen = BTreeSet::new();
        let mut filled = 0usize;
        for &slot in row {
            if slot == EMPTY_SLOT {
                continue;
            }
            filled += 1;
            let nb = Neighbor::unpack(slot);
            if nb.index as usize >= n {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::IndexOutOfRange });
                continue;
            }
            if nb.index as usize == p {
                report.violations.push(AuditViolation { point: p, kind: ViolationKind::SelfEdge });
                continue;
            }
            if !nb.dist.is_finite() {
                report.violations.push(AuditViolation { point: p, kind: ViolationKind::NonFinite });
                continue;
            }
            if nb.dist < 0.0 {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::NegativeDistance });
                continue;
            }
            let actual = metric.eval(vs.row(p), vs.row(nb.index as usize));
            if (nb.dist - actual).abs() > DIST_RTOL * actual.abs().max(1.0) {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::DistanceMismatch });
                continue;
            }
            if !seen.insert(nb.index) {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::DuplicateEdge });
            }
        }
        if filled < k {
            report.violations.push(AuditViolation { point: p, kind: ViolationKind::ShortList });
        }
    }
    report
}

/// Audit a decoded host graph: per-list, indices in range and not self,
/// distances finite, non-negative and sorted ascending, no duplicates, at
/// most `k` entries counted as full. Distance recomputation is skipped —
/// decoded graphs may come from disk without their vectors.
pub fn audit_graph(lists: &[Vec<Neighbor>], n: usize, k: usize) -> AuditReport {
    let mut report = AuditReport::default();
    for (p, list) in lists.iter().enumerate() {
        let mut seen = BTreeSet::new();
        for nb in list {
            if nb.index as usize >= n {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::IndexOutOfRange });
            } else if nb.index as usize == p {
                report.violations.push(AuditViolation { point: p, kind: ViolationKind::SelfEdge });
            }
            if !nb.dist.is_finite() {
                report.violations.push(AuditViolation { point: p, kind: ViolationKind::NonFinite });
            } else if nb.dist < 0.0 {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::NegativeDistance });
            }
            if !seen.insert(nb.index) {
                report
                    .violations
                    .push(AuditViolation { point: p, kind: ViolationKind::DuplicateEdge });
            }
        }
        if list.windows(2).any(|w| w[0].dist > w[1].dist) {
            report.violations.push(AuditViolation { point: p, kind: ViolationKind::Unsorted });
        }
        if list.len() < k {
            report.violations.push(AuditViolation { point: p, kind: ViolationKind::ShortList });
        }
    }
    report
}

/// Re-derive point `p`'s neighbor list by brute force over `candidates`
/// (typically the union of `p`'s forest buckets): recompute every distance,
/// drop self edges and duplicates, sort by `(dist, index)` and keep the best
/// `k`. The result satisfies every invariant [`audit_slots`] checks.
pub fn repair_list(
    vs: &VectorSet,
    p: usize,
    k: usize,
    candidates: &[u32],
    metric: Metric,
) -> Vec<Neighbor> {
    let mut seen = BTreeSet::new();
    let mut list: Vec<Neighbor> = candidates
        .iter()
        .copied()
        .filter(|&q| (q as usize) < vs.len() && q as usize != p && seen.insert(q))
        .map(|q| Neighbor::new(q, metric.eval(vs.row(p), vs.row(q as usize))))
        .filter(|nb| nb.dist.is_finite())
        .collect();
    sort_neighbors(&mut list);
    list.truncate(k);
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    fn tiny_vs() -> VectorSet {
        DatasetSpec::UniformCube { n: 10, dim: 4 }.generate(3).vectors
    }

    fn clean_slots(vs: &VectorSet, k: usize) -> Vec<u64> {
        // Exact k-NN packed into slots — a maximally well-formed buffer.
        let truth = wknng_data::exact_knn(vs, k, Metric::SquaredL2);
        let mut slots = vec![EMPTY_SLOT; vs.len() * k];
        for (p, list) in truth.iter().enumerate() {
            for (i, nb) in list.iter().enumerate() {
                slots[p * k + i] = nb.pack();
            }
        }
        slots
    }

    #[test]
    fn clean_slots_audit_clean() {
        let vs = tiny_vs();
        let slots = clean_slots(&vs, 3);
        let report = audit_slots(&slots, &vs, 3, Metric::SquaredL2);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.corrupted_points().is_empty());
    }

    #[test]
    fn audit_flags_each_corruption_kind() {
        let vs = tiny_vs();
        let k = 3;
        let mut slots = clean_slots(&vs, k);
        slots[0] = Neighbor::new(0, 1.0).pack(); // self edge at point 0
        slots[k] = Neighbor::new(99, 1.0).pack(); // out of range at point 1
        slots[2 * k] = Neighbor::new(5, f32::NAN).pack(); // non-finite at point 2
        slots[3 * k] = Neighbor::new(5, -1.0).pack(); // negative at point 3
        let wrong = Neighbor::unpack(slots[4 * k]);
        slots[4 * k] = Neighbor::new(wrong.index, wrong.dist + 10.0).pack(); // mismatch at 4
        let report = audit_slots(&slots, &vs, k, Metric::SquaredL2);
        let kinds: Vec<(usize, ViolationKind)> =
            report.violations.iter().map(|v| (v.point, v.kind)).collect();
        assert!(kinds.contains(&(0, ViolationKind::SelfEdge)));
        assert!(kinds.contains(&(1, ViolationKind::IndexOutOfRange)));
        assert!(kinds.contains(&(2, ViolationKind::NonFinite)));
        assert!(kinds.contains(&(3, ViolationKind::NegativeDistance)));
        assert!(kinds.contains(&(4, ViolationKind::DistanceMismatch)));
        assert_eq!(report.corrupted_points(), BTreeSet::from([0, 1, 2, 3, 4]));
        assert_eq!(report.corruption_count(), 5);
    }

    #[test]
    fn duplicates_and_short_lists_are_informational() {
        let vs = tiny_vs();
        let k = 3;
        let mut slots = clean_slots(&vs, k);
        slots[1] = slots[2]; // duplicate index in point 0's row
        slots[k] = EMPTY_SLOT; // short list at point 1
        let report = audit_slots(&slots, &vs, k, Metric::SquaredL2);
        assert!(!report.is_clean());
        assert!(report.corrupted_points().is_empty(), "neither finding is corruption");
        assert!(report
            .violations
            .iter()
            .any(|v| v.point == 0 && v.kind == ViolationKind::DuplicateEdge));
        assert!(report
            .violations
            .iter()
            .any(|v| v.point == 1 && v.kind == ViolationKind::ShortList));
    }

    #[test]
    fn corrupted_empty_slot_is_caught() {
        // A bit flip on an EMPTY slot leaves index 0xFFFFFFFF: out of range.
        let vs = tiny_vs();
        let k = 3;
        let mut slots = vec![EMPTY_SLOT; vs.len() * k];
        slots[5] ^= 1 << 61;
        let report = audit_slots(&slots, &vs, k, Metric::SquaredL2);
        assert_eq!(report.corrupted_points(), BTreeSet::from([1]));
    }

    #[test]
    fn graph_audit_checks_order_and_duplicates() {
        let n = 6;
        let mut lists = vec![
            vec![Neighbor::new(1, 0.5), Neighbor::new(2, 1.0)],
            vec![Neighbor::new(2, 2.0), Neighbor::new(3, 1.0)], // unsorted
            vec![Neighbor::new(4, 1.0), Neighbor::new(4, 1.0)], // duplicate
            vec![Neighbor::new(3, 1.0)],                        // self edge
            vec![Neighbor::new(9, 1.0)],                        // out of range
            vec![Neighbor::new(0, f32::INFINITY)],              // non-finite
        ];
        let report = audit_graph(&lists, n, 2);
        let has = |p: usize, kind: ViolationKind| {
            report.violations.iter().any(|v| v.point == p && v.kind == kind)
        };
        assert!(!has(0, ViolationKind::Unsorted));
        assert!(has(1, ViolationKind::Unsorted));
        assert!(has(2, ViolationKind::DuplicateEdge));
        assert!(has(3, ViolationKind::SelfEdge));
        assert!(has(4, ViolationKind::IndexOutOfRange));
        assert!(has(5, ViolationKind::NonFinite));
        // Lists shorter than k are flagged.
        assert!(has(3, ViolationKind::ShortList));
        lists.truncate(1);
        assert!(audit_graph(&lists, n, 2).is_clean());
    }

    #[test]
    fn repair_rebuilds_the_exact_list_over_its_candidates() {
        let vs = tiny_vs();
        let k = 3;
        let candidates: Vec<u32> = (0..vs.len() as u32).collect();
        let repaired = repair_list(&vs, 2, k, &candidates, Metric::SquaredL2);
        let truth = wknng_data::exact_knn(&vs, k, Metric::SquaredL2);
        assert_eq!(repaired, truth[2]);
        // Repaired lists pass their own audit.
        let mut slots = vec![EMPTY_SLOT; vs.len() * k];
        for (i, nb) in repaired.iter().enumerate() {
            slots[2 * k + i] = nb.pack();
        }
        let report = audit_slots(&slots, &vs, k, Metric::SquaredL2);
        assert!(report.corrupted_points().is_empty());
    }

    #[test]
    fn repair_tolerates_junk_candidates() {
        let vs = tiny_vs();
        // Self, duplicates and out-of-range candidates are all dropped.
        let candidates = vec![2, 2, 99, 1, 1, 3];
        let repaired = repair_list(&vs, 2, 4, &candidates, Metric::SquaredL2);
        let indices: Vec<u32> = repaired.iter().map(|nb| nb.index).collect();
        assert_eq!(indices.len(), 2);
        assert!(indices.contains(&1) && indices.contains(&3));
    }
}
