//! `RaceCell` — plain shared data as far as the race detector is concerned.
//!
//! Protocol tests use this where production code would hold plain fields:
//! every `read`/`write` is a scheduling point checked against the
//! vector-clock happens-before relation, so an access that is not ordered
//! by a lock, channel, or acquire/release atomic pair is flagged as a data
//! race — even on the very first (fully serialized) schedule, because the
//! clocks already prove no ordering edge exists.
//!
//! The value itself sits behind an internal `std::sync::Mutex`, so the
//! *host process* is never actually undefined-behavior racy; the detector
//! reports what the *protocol* failed to order.

use std::sync::Mutex;

use super::sched::{self, Op, OpKind};

/// A model-checked "unsynchronized" value.
#[derive(Debug)]
pub struct RaceCell<T> {
    value: Mutex<T>,
    obj: usize,
    label: &'static str,
}

impl<T: Clone> RaceCell<T> {
    pub fn new(label: &'static str, value: T) -> RaceCell<T> {
        RaceCell { value: Mutex::new(value), obj: sched::labeled_obj_id(label), label }
    }

    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Read the value; a scheduling point + HB read-check under the model.
    #[track_caller]
    pub fn read(&self, site: &'static str) -> T {
        let _ = sched::schedule(Op { kind: OpKind::CellRead, obj: self.obj, site });
        self.value.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Write the value; a scheduling point + HB write-check under the model.
    #[track_caller]
    pub fn write(&self, site: &'static str, v: T) {
        let _ = sched::schedule(Op { kind: OpKind::CellWrite, obj: self.obj, site });
        *self.value.lock().unwrap_or_else(|p| p.into_inner()) = v;
    }
}
