//! Vector clocks — the happens-before lattice the race detector runs on.
//!
//! Every model thread carries a [`VClock`]; every synchronization object
//! (mutex, atomic, channel) carries the clock its last release published.
//! Acquire-class operations join the object's clock into the thread's;
//! release-class operations publish the thread's clock into the object's.
//! Two plain-data accesses race exactly when neither clock dominates the
//! other at the access sites — the classic FastTrack-style formulation,
//! kept in full-vector form because model runs have a handful of threads.

/// A vector clock over model-thread ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u32>);

impl VClock {
    /// The zero clock.
    pub fn new() -> VClock {
        VClock(Vec::new())
    }

    /// This thread's own component, advanced once per executed operation.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component lookup (absent components are 0).
    pub fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Pointwise maximum: `self ⊔= other` (the acquire half of an edge).
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// True when every component of `self` is ≤ the matching component of
    /// `other` — i.e. everything `self` knows happened-before `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &c)| c <= other.get(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_ordering() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(!a.le(&b) && !b.le(&a), "independent ticks are concurrent");
        let mut c = b.clone();
        c.join(&a);
        assert!(a.le(&c) && b.le(&c));
        assert_eq!(c.get(0), 2);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(7), 0, "absent components read as zero");
    }

    #[test]
    fn le_is_reflexive_and_zero_is_bottom() {
        let mut a = VClock::new();
        a.tick(3);
        assert!(a.le(&a));
        assert!(VClock::new().le(&a));
        assert!(!a.le(&VClock::new()));
    }
}
