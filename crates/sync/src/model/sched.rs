//! The deterministic model-checking scheduler.
//!
//! One model thread runs at a time; every instrumented operation is a
//! *scheduling point* where the explorer chooses which thread proceeds.
//! A run executes under a replayed prefix of choices; after each run the
//! explorer backtracks DFS-style to the deepest decision with an untried
//! viable alternative and replays. Viability implements the two bounds:
//!
//! * **preemption bound** — switching away from a still-enabled thread is a
//!   preemption; paths may contain at most `Config::preemption_bound`;
//! * **conflict (DPOR-style) reduction** — a preemptive alternative is only
//!   explored when its pending operation *conflicts* with the chosen
//!   thread's (same object, not both reads); reordering independent
//!   operations cannot change the outcome. Forced switches (the running
//!   thread blocked or finished) explore every enabled alternative.
//!
//! Detection is layered on the same event stream: a vector-clock
//! happens-before checker over [`super::cell::RaceCell`] accesses and
//! ordering-annotated atomics (too-weak orderings surface as races),
//! deadlock / lost-wakeup detection when no thread is runnable, and a
//! lock-order graph whose cycles are reported even when no explored
//! schedule actually deadlocks.

use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering as AOrd};
use std::sync::{Condvar, Mutex};

use super::clock::VClock;
use super::{Config, Finding, FindingKind};

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// Memory-ordering class of an atomic op, as declared at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ord8 {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ord8 {
    pub(crate) fn from_std(o: std::sync::atomic::Ordering) -> Ord8 {
        use std::sync::atomic::Ordering::*;
        match o {
            Relaxed => Ord8::Relaxed,
            Acquire => Ord8::Acquire,
            Release => Ord8::Release,
            AcqRel => Ord8::AcqRel,
            _ => Ord8::SeqCst,
        }
    }

    fn acquires(self) -> bool {
        matches!(self, Ord8::Acquire | Ord8::AcqRel | Ord8::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, Ord8::Release | Ord8::AcqRel | Ord8::SeqCst)
    }
}

/// What a thread is about to do at a scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First event of a spawned thread (makes it schedulable).
    Start,
    LockAcquire,
    /// Atomic release-and-wait on a condvar; `lock` is the paired mutex.
    CondWait {
        lock: usize,
        timeout: bool,
    },
    CondNotify {
        all: bool,
    },
    AtomicLoad(Ord8),
    AtomicStore(Ord8),
    AtomicRmw(Ord8),
    CellRead,
    CellWrite,
    ChanSend,
    ChanRecv {
        timeout: bool,
    },
    /// Yield point with no shared effect (model `thread::sleep`).
    Sleep,
    Join {
        target: usize,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Op {
    pub kind: OpKind,
    /// Object the op touches (0 = none).
    pub obj: usize,
    /// Call-site label carried into findings.
    pub site: &'static str,
}

/// How a completed scheduling call resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    /// No active run (or unregistered thread): perform the real std op.
    Passthrough,
    /// The op executed under the model.
    Done,
    /// A timeout-capable wait fired its timeout.
    TimedOut,
    /// Channel receive: a message is available from the inner channel.
    ChanData,
    /// Channel receive: every sender is gone.
    ChanDisconnected,
}

/// Panic payload used to tear model threads down when a run aborts. Caught
/// by the thread wrapper and the explorer; user-level `catch_unwind` in
/// supervised loops must re-check [`super::abort_checkpoint`].
pub(crate) struct ModelAbort;

// ---------------------------------------------------------------------------
// Run state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObjKind {
    Lock,
    Cond,
    Atomic,
    Cell,
    Chan,
}

#[derive(Debug)]
struct ObjState {
    label: &'static str,
    /// Clock published by the last release-class op on this object.
    clock: VClock,
    /// Lock: current owner.
    owner: Option<usize>,
    /// Cell: last write (thread, clock at write, site).
    last_write: Option<(usize, VClock, &'static str)>,
    /// Cell: reads since the last write.
    reads: Vec<(usize, VClock, &'static str)>,
    /// Chan: queued messages / live senders / receiver liveness.
    msgs: usize,
    senders: usize,
    /// Cond: a notify happened at some point (lost-wakeup classification).
    notified_ever: bool,
}

impl ObjState {
    fn new(kind: ObjKind, label: &'static str) -> ObjState {
        ObjState {
            label,
            clock: VClock::new(),
            owner: None,
            last_write: None,
            reads: Vec::new(),
            msgs: 0,
            senders: if kind == ObjKind::Chan { 1 } else { 0 },
            notified_ever: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing real code between scheduling points.
    Running,
    /// Parked at a scheduling point with a pending op.
    Ready,
    /// In a condvar wait; `timeout` waits stay schedulable (timeout fire).
    Waiting {
        cond: usize,
        lock: usize,
        timeout: bool,
    },
    Finished,
}

struct ThreadState {
    name: String,
    status: Status,
    pending: Option<Op>,
    clock: VClock,
    /// Locks currently held: (object, acquisition site).
    held: Vec<(usize, &'static str)>,
    /// Set when a timed wait was woken by its timeout, not a notify.
    timed_out: bool,
    /// The OS thread has reached its Start op (spawn rendezvous).
    registered: bool,
}

/// Signature used by the conflict filter: what an op touches and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpSig {
    Read(usize),
    Write(usize),
    /// Timeout fire / pure-sync op: conflicts with nothing.
    Control,
    /// A thread's Start op stands in for everything the thread will do, so
    /// it conflicts with anything (otherwise the explorer could never
    /// preempt into a freshly spawned thread and would miss every
    /// child-runs-first interleaving).
    Always,
}

fn sig_of(op: &Op) -> OpSig {
    match op.kind {
        OpKind::CellRead | OpKind::AtomicLoad(_) => OpSig::Read(op.obj),
        OpKind::CellWrite
        | OpKind::AtomicStore(_)
        | OpKind::AtomicRmw(_)
        | OpKind::LockAcquire
        | OpKind::CondWait { .. }
        | OpKind::CondNotify { .. }
        | OpKind::ChanSend
        | OpKind::ChanRecv { .. } => OpSig::Write(op.obj),
        OpKind::Start => OpSig::Always,
        OpKind::Sleep | OpKind::Join { .. } => OpSig::Control,
    }
}

fn conflicts(a: OpSig, b: OpSig) -> bool {
    match (a, b) {
        (OpSig::Always, _) | (_, OpSig::Always) => true,
        (OpSig::Control, _) | (_, OpSig::Control) => false,
        (OpSig::Read(_), OpSig::Read(_)) => false,
        (OpSig::Read(x), OpSig::Write(y))
        | (OpSig::Write(x), OpSig::Read(y))
        | (OpSig::Write(x), OpSig::Write(y)) => x == y,
    }
}

/// One recorded scheduling decision (what the backtracker works on).
struct Decision {
    /// Threads enabled at this point, with their pending-op signatures.
    enabled: Vec<(usize, OpSig)>,
    chosen: usize,
    /// Thread that was active before this decision, and whether it was
    /// still enabled (chosen != prev while enabled == a preemption).
    prev: usize,
    prev_enabled: bool,
    /// Preemptions accumulated strictly before this decision.
    preemptions_before: usize,
}

struct Run {
    threads: Vec<ThreadState>,
    active: usize,
    /// Set by `decide()` for the chosen thread; consumed when it executes.
    /// Distinguishes "granted by a decision" from "holder arriving at a new
    /// op" (which must open a fresh decision, not re-use the old grant).
    granted: bool,
    step: usize,
    replay: Vec<usize>,
    decisions: Vec<Decision>,
    objects: HashMap<usize, ObjState>,
    lock_edges: Vec<(usize, usize, &'static str)>,
    obj_labels: HashMap<usize, &'static str>,
    findings: Vec<Finding>,
    aborted: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

struct Runtime {
    run: Option<Run>,
}

static STATE: Mutex<Runtime> = Mutex::new(Runtime { run: None });
static WAKE: Condvar = Condvar::new();
static OBJ_IDS: AtomicUsize = AtomicUsize::new(1);
/// Construction-time labels (object id -> name), outliving individual runs.
static LABELS: Mutex<Option<HashMap<usize, &'static str>>> = Mutex::new(None);

thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Allocate a fresh object id (stable for the lifetime of the shim object).
pub(crate) fn next_obj_id() -> usize {
    OBJ_IDS.fetch_add(1, AOrd::Relaxed)
}

/// Allocate an object id carrying a human-readable label for findings.
pub(crate) fn labeled_obj_id(label: &'static str) -> usize {
    let id = next_obj_id();
    if let Ok(mut g) = LABELS.lock() {
        g.get_or_insert_with(HashMap::new).insert(id, label);
    }
    id
}

fn registered_label(id: usize) -> Option<&'static str> {
    LABELS.lock().ok().and_then(|g| g.as_ref().and_then(|m| m.get(&id).copied()))
}

fn tid() -> Option<usize> {
    TID.with(|t| t.get())
}

/// Set `WKNNG_MODEL_TRACE=1` to stream every scheduler event to stderr —
/// the first tool to reach for when a protocol body hangs or diverges.
fn trace(msg: impl FnOnce() -> String) {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    if *ON.get_or_init(|| std::env::var_os("WKNNG_MODEL_TRACE").is_some()) {
        eprintln!("[model] {}", msg());
    }
}

/// True when the calling thread is a registered participant of a live run.
pub(crate) fn participating() -> bool {
    if tid().is_none() {
        return false;
    }
    STATE.lock().map(|g| g.run.is_some()).unwrap_or(false)
}

/// Panic (ModelAbort) if the active run is being torn down. Supervised
/// loops that `catch_unwind` must call this outside the catch so an
/// aborting run can unwind through them. No-op outside a run.
pub(crate) fn abort_checkpoint() {
    if tid().is_none() {
        return;
    }
    let g = STATE.lock().expect("model state");
    if g.run.as_ref().is_some_and(|r| r.aborted) && !std::thread::panicking() {
        drop(g);
        std::panic::panic_any(ModelAbort);
    }
}

// ---------------------------------------------------------------------------
// In-run machinery
// ---------------------------------------------------------------------------

impl Run {
    fn obj(&mut self, id: usize, kind: ObjKind, label: &'static str) -> &mut ObjState {
        let label = registered_label(id).unwrap_or(label);
        self.obj_labels.entry(id).or_insert(label);
        self.objects.entry(id).or_insert_with(|| ObjState::new(kind, label))
    }

    /// Best label for an object in a report: whatever an executed op
    /// recorded, else the global registry (covers objects a stuck thread
    /// is *pending* on that no executed op ever touched).
    fn label_of(&self, id: usize) -> Option<&'static str> {
        self.obj_labels.get(&id).copied().or_else(|| registered_label(id))
    }

    /// Is `t`'s pending state schedulable right now?
    fn enabled(&self, t: usize) -> bool {
        let th = &self.threads[t];
        match th.status {
            Status::Running | Status::Finished => false,
            Status::Waiting { timeout, .. } => timeout,
            Status::Ready => match th.pending {
                None => false,
                Some(op) => match op.kind {
                    OpKind::LockAcquire => {
                        self.objects.get(&op.obj).is_none_or(|o| o.owner.is_none())
                    }
                    OpKind::ChanRecv { timeout } => {
                        // An untouched channel object means no sends and a
                        // live initial sender — a receive cannot proceed.
                        timeout
                            || self
                                .objects
                                .get(&op.obj)
                                .is_some_and(|o| o.msgs > 0 || o.senders == 0)
                    }
                    OpKind::Join { target } => self.threads[target].status == Status::Finished,
                    _ => true,
                },
            },
        }
    }

    fn enabled_set(&self) -> Vec<usize> {
        (0..self.threads.len()).filter(|&t| self.enabled(t)).collect()
    }

    fn finding(&mut self, kind: FindingKind, site: String, detail: String) {
        self.findings.push(Finding { kind, site, detail });
        self.aborted = true;
    }

    /// What a blocked thread is stuck on, for deadlock reports.
    fn stuck_on(&self, t: usize) -> String {
        let th = &self.threads[t];
        match th.status {
            Status::Waiting { cond, .. } => {
                format!("condvar `{}`", self.label_of(cond).unwrap_or("?"))
            }
            Status::Ready => match th.pending {
                Some(op) => {
                    let label = self.label_of(op.obj).unwrap_or("?");
                    match op.kind {
                        OpKind::LockAcquire => format!("lock `{label}` at `{}`", op.site),
                        OpKind::ChanRecv { .. } => format!("channel `{label}` at `{}`", op.site),
                        OpKind::Join { target } => {
                            format!("join of `{}`", self.threads[target].name)
                        }
                        _ => format!("`{}`", op.site),
                    }
                }
                None => "unknown".into(),
            },
            _ => "unknown".into(),
        }
    }

    /// No thread is runnable: classify and record the hang.
    fn report_deadlock(&mut self) {
        let stuck: Vec<usize> = (0..self.threads.len())
            .filter(|&t| !matches!(self.threads[t].status, Status::Finished | Status::Running))
            .collect();
        // A hang where somebody is stuck on a *lock* is a deadlock; a hang
        // made only of condvar waits / receives (plus joins of such
        // threads) means the wake-up signal was lost or never sent.
        let lock_stuck = stuck.iter().any(|&t| {
            matches!(self.threads[t].pending, Some(Op { kind: OpKind::LockAcquire, .. }))
        });
        let wait_stuck = stuck.iter().any(|&t| {
            matches!(self.threads[t].status, Status::Waiting { .. })
                || matches!(self.threads[t].pending, Some(Op { kind: OpKind::ChanRecv { .. }, .. }))
        });
        let kind =
            if !lock_stuck && wait_stuck { FindingKind::LostWakeup } else { FindingKind::Deadlock };
        let detail = stuck
            .iter()
            .map(|&t| format!("`{}` waits on {}", self.threads[t].name, self.stuck_on(t)))
            .collect::<Vec<_>>()
            .join("; ");
        let site = stuck
            .first()
            .map(|&t| match self.threads[t].status {
                Status::Waiting { cond, .. } => self.label_of(cond).unwrap_or("?").to_string(),
                _ => self.threads[t]
                    .pending
                    .map(|op| self.label_of(op.obj).unwrap_or(op.site).to_string())
                    .unwrap_or_default(),
            })
            .unwrap_or_default();
        self.finding(kind, site, detail);
    }

    /// Pick the next thread to run. Returns false when the run is over
    /// (all threads finished) or aborted.
    fn decide(&mut self) -> bool {
        if self.aborted {
            return false;
        }
        let enabled = self.enabled_set();
        if enabled.is_empty() {
            if self.threads.iter().all(|t| t.status == Status::Finished) {
                return false;
            }
            // Only the baton holder runs real code, and it is parked at
            // this decision — so an empty enabled set is a genuine hang.
            self.report_deadlock();
            return false;
        }
        let prev = self.active;
        let prev_enabled = enabled.contains(&prev);
        let chosen = if self.step < self.replay.len() {
            let c = self.replay[self.step];
            if enabled.contains(&c) {
                c
            } else {
                // Replay divergence: the program took a different path than
                // the recorded prefix. Protocol bodies must be deterministic.
                self.finding(
                    FindingKind::InvariantViolation,
                    "scheduler".into(),
                    format!(
                        "replay divergence at step {}: thread {} not enabled (enabled: {:?})",
                        self.step, c, enabled
                    ),
                );
                return false;
            }
        } else if prev_enabled {
            prev
        } else {
            enabled[0]
        };
        let preemptions_before = self
            .decisions
            .last()
            .map(|d| d.preemptions_before + usize::from(d.prev_enabled && d.chosen != d.prev))
            .unwrap_or(0);
        let sigs = enabled
            .iter()
            .map(|&t| {
                let sig = match self.threads[t].status {
                    Status::Waiting { .. } => OpSig::Control,
                    _ => self.threads[t].pending.as_ref().map(sig_of).unwrap_or(OpSig::Control),
                };
                // A timeout-capable wait chosen while not "really" ready is
                // a timeout fire — control, not a data op.
                let really = match self.threads[t].pending {
                    Some(Op { kind: OpKind::ChanRecv { .. }, obj, .. }) => {
                        self.objects.get(&obj).is_some_and(|o| o.msgs > 0 || o.senders == 0)
                    }
                    _ => true,
                };
                (t, if really { sig } else { OpSig::Control })
            })
            .collect();
        self.decisions.push(Decision {
            enabled: sigs,
            chosen,
            prev,
            prev_enabled,
            preemptions_before,
        });
        trace(|| {
            format!(
                "decision {}: enabled={:?} chosen=t{chosen} prev=t{prev} (enabled={prev_enabled})",
                self.step, enabled
            )
        });
        self.step += 1;
        self.active = chosen;
        self.granted = true;
        // Firing a timeout on a waiting thread converts it to a lock
        // re-acquisition with the timed_out flag set.
        if let Status::Waiting { lock, .. } = self.threads[chosen].status {
            self.threads[chosen].status = Status::Ready;
            self.threads[chosen].pending =
                Some(Op { kind: OpKind::LockAcquire, obj: lock, site: "condvar timeout" });
            self.threads[chosen].timed_out = true;
        }
        true
    }

    /// Execute the active thread's pending op against the model state.
    /// Returns `None` when the op parked the thread (condvar wait) and a
    /// new decision is needed.
    fn execute(&mut self, me: usize) -> Option<Outcome> {
        let op = self.threads[me].pending.take().expect("granted thread has a pending op");
        let mut clk = std::mem::take(&mut self.threads[me].clock);
        clk.tick(me);
        let outcome = match op.kind {
            OpKind::Start | OpKind::Sleep => Outcome::Done,
            OpKind::LockAcquire => {
                // Lock-order edges: everything already held orders before
                // this acquisition.
                let held = self.threads[me].held.clone();
                let o = self.obj(op.obj, ObjKind::Lock, op.site);
                debug_assert!(o.owner.is_none(), "granted a held lock");
                o.owner = Some(me);
                clk.join(&o.clock);
                for (h, _) in held {
                    if h != op.obj {
                        self.lock_edges.push((h, op.obj, op.site));
                    }
                }
                self.threads[me].held.push((op.obj, op.site));
                if self.threads[me].timed_out {
                    self.threads[me].timed_out = false;
                    Outcome::TimedOut
                } else {
                    Outcome::Done
                }
            }
            OpKind::CondWait { lock, timeout } => {
                // Atomically release the paired lock and park.
                self.release_lock(me, lock, &clk);
                self.threads[me].status = Status::Waiting { cond: op.obj, lock, timeout };
                self.obj(op.obj, ObjKind::Cond, op.site);
                self.threads[me].clock = clk;
                return None;
            }
            OpKind::CondNotify { all } => {
                self.obj(op.obj, ObjKind::Cond, op.site).notified_ever = true;
                let waiters: Vec<usize> = (0..self.threads.len())
                    .filter(|&t| {
                        matches!(self.threads[t].status,
                                 Status::Waiting { cond, .. } if cond == op.obj)
                    })
                    .collect();
                for (i, t) in waiters.into_iter().enumerate() {
                    if i > 0 && !all {
                        break;
                    }
                    if let Status::Waiting { lock, .. } = self.threads[t].status {
                        self.threads[t].status = Status::Ready;
                        self.threads[t].pending =
                            Some(Op { kind: OpKind::LockAcquire, obj: lock, site: op.site });
                    }
                }
                Outcome::Done
            }
            OpKind::AtomicLoad(ord) => {
                let o = self.obj(op.obj, ObjKind::Atomic, op.site);
                if ord.acquires() {
                    clk.join(&o.clock);
                }
                Outcome::Done
            }
            OpKind::AtomicStore(ord) | OpKind::AtomicRmw(ord) => {
                let o = self.obj(op.obj, ObjKind::Atomic, op.site);
                if ord.acquires() {
                    clk.join(&o.clock);
                }
                if ord.releases() {
                    o.clock.join(&clk);
                }
                Outcome::Done
            }
            OpKind::CellRead => {
                let o = self.obj(op.obj, ObjKind::Cell, op.site);
                let label = o.label;
                if let Some((wt, wc, ws)) = o.last_write.clone() {
                    if wt != me && !wc.le(&clk) {
                        let detail = format!(
                            "read of `{label}` at `{}` races the write at `{ws}` \
                             (no happens-before edge between them)",
                            op.site
                        );
                        self.finding(FindingKind::DataRace, op.site.to_string(), detail);
                    }
                }
                if let Some(o) = self.objects.get_mut(&op.obj) {
                    o.reads.retain(|(t, _, _)| *t != me);
                    o.reads.push((me, clk.clone(), op.site));
                }
                Outcome::Done
            }
            OpKind::CellWrite => {
                let o = self.obj(op.obj, ObjKind::Cell, op.site);
                let label = o.label;
                let mut race: Option<String> = None;
                if let Some((wt, wc, ws)) = &o.last_write {
                    if *wt != me && !wc.le(&clk) {
                        race = Some(format!(
                            "write of `{label}` at `{}` races the write at `{ws}`",
                            op.site
                        ));
                    }
                }
                if race.is_none() {
                    for (rt, rc, rs) in &o.reads {
                        if *rt != me && !rc.le(&clk) {
                            race = Some(format!(
                                "write of `{label}` at `{}` races the read at `{rs}`",
                                op.site
                            ));
                            break;
                        }
                    }
                }
                o.last_write = Some((me, clk.clone(), op.site));
                o.reads.clear();
                if let Some(detail) = race {
                    self.finding(FindingKind::DataRace, op.site.to_string(), detail);
                }
                Outcome::Done
            }
            OpKind::ChanSend => {
                let o = self.obj(op.obj, ObjKind::Chan, op.site);
                o.clock.join(&clk);
                o.msgs += 1;
                Outcome::Done
            }
            OpKind::ChanRecv { .. } => {
                let o = self.obj(op.obj, ObjKind::Chan, op.site);
                if o.msgs > 0 {
                    o.msgs -= 1;
                    clk.join(&o.clock);
                    Outcome::ChanData
                } else if o.senders == 0 {
                    clk.join(&o.clock);
                    Outcome::ChanDisconnected
                } else {
                    Outcome::TimedOut
                }
            }
            OpKind::Join { target } => {
                let tclk = self.threads[target].clock.clone();
                clk.join(&tclk);
                Outcome::Done
            }
        };
        self.threads[me].clock = clk;
        self.threads[me].status = Status::Running;
        Some(outcome)
    }

    fn release_lock(&mut self, me: usize, lock: usize, clk: &VClock) {
        self.threads[me].held.retain(|(h, _)| *h != lock);
        let o = self.obj(lock, ObjKind::Lock, "release");
        debug_assert_eq!(o.owner, Some(me), "release of a lock the thread does not hold");
        o.owner = None;
        o.clock.join(clk);
    }
}

// ---------------------------------------------------------------------------
// Scheduling entry points (called by the shim)
// ---------------------------------------------------------------------------

fn panic_abort() -> ! {
    std::panic::panic_any(ModelAbort)
}

/// The universal scheduling point. Parks the calling thread, lets the
/// explorer pick who runs, executes the op against the model state when
/// granted, and returns how it resolved.
///
/// Serialization invariant: exactly one thread (the baton holder,
/// `run.active`) executes real code at any moment. A non-holder arriving
/// here parks without deciding; the holder, arriving at its own next op,
/// opens a decision over every parked thread — so the enabled set a
/// decision sees is always complete and deterministic.
pub(crate) fn schedule(op: Op) -> Outcome {
    let Some(me) = tid() else {
        return Outcome::Passthrough;
    };
    let mut g = STATE.lock().expect("model state");
    if g.run.is_none() {
        return Outcome::Passthrough;
    }
    {
        let run = g.run.as_mut().expect("checked above");
        if run.aborted {
            drop(g);
            // Drop guards (ticket reply sends) run while threads unwind from
            // an abort; panicking again here would be a panic-in-drop.
            if std::thread::panicking() {
                return Outcome::Done;
            }
            panic_abort();
        }
        run.threads[me].pending = Some(op);
        run.threads[me].status = Status::Ready;
        trace(|| format!("t{me} arrives at {:?} obj={} @{}", op.kind, op.obj, op.site));
    }
    wait_granted(g, me)
}

/// Park until granted; the baton holder also opens decisions here.
fn wait_granted(mut g: std::sync::MutexGuard<'static, Runtime>, me: usize) -> Outcome {
    loop {
        let mut progressed = false;
        {
            let run = g.run.as_mut().expect("run torn down under a live thread");
            if run.aborted {
                drop(g);
                if std::thread::panicking() {
                    return Outcome::Done;
                }
                panic_abort();
            }
            if run.active == me {
                if run.granted {
                    run.granted = false;
                    match run.execute(me) {
                        Some(outcome) => {
                            trace(|| format!("t{me} executed -> {outcome:?}"));
                            WAKE.notify_all();
                            return outcome;
                        }
                        None => {
                            // Parked (condvar wait): hand the baton off and
                            // wait to be notified + granted again.
                            if !run.decide() {
                                WAKE.notify_all();
                                drop(g);
                                panic_abort();
                            }
                            progressed = true;
                        }
                    }
                } else {
                    // Holder arriving at a fresh op: open a decision. It
                    // may grant us (loop spins once and executes) or hand
                    // the baton to a parked thread.
                    if !run.decide() {
                        WAKE.notify_all();
                        drop(g);
                        panic_abort();
                    }
                    progressed = true;
                }
            }
        }
        if progressed {
            WAKE.notify_all();
            // Re-inspect immediately: we may have granted ourselves.
            continue;
        }
        g = WAKE.wait(g).expect("model state");
    }
}

/// Non-blocking, decision-free state update: lock releases, sender drops
/// and similar "cannot fail, cannot block" transitions. Safe to call from
/// `Drop` impls during unwinding (never panics).
pub(crate) fn silent(op: Op) {
    let Some(me) = tid() else { return };
    let Ok(mut g) = STATE.lock() else { return };
    let Some(run) = g.run.as_mut() else { return };
    if run.aborted {
        return;
    }
    let mut clk = std::mem::take(&mut run.threads[me].clock);
    clk.tick(me);
    match op.kind {
        // Reused as the generic release marker.
        OpKind::LockAcquire => run.release_lock(me, op.obj, &clk),
        OpKind::ChanSend => {
            // Sender dropped: decrement, wake blocked receivers via the
            // next decision (enabledness changes with senders == 0).
            let o = run.obj(op.obj, ObjKind::Chan, op.site);
            o.senders = o.senders.saturating_sub(1);
            o.clock.join(&clk);
        }
        OpKind::ChanRecv { .. } => {
            // Receiver dropped: nothing to track (sends fail for real).
        }
        _ => {}
    }
    run.threads[me].clock = clk;
    WAKE.notify_all();
}

/// Sender clone: bump the live-sender count (decision-free).
pub(crate) fn sender_cloned(obj: usize) {
    if tid().is_none() {
        return;
    }
    let Ok(mut g) = STATE.lock() else { return };
    let Some(run) = g.run.as_mut() else { return };
    if run.aborted {
        return;
    }
    run.obj(obj, ObjKind::Chan, "sender clone").senders += 1;
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

/// Allocate a child thread slot (called by the parent, a silent op), then
/// block until the child OS thread registers — a deterministic rendezvous,
/// so spawn order never races the schedule.
pub(crate) fn spawn_child(name: String) -> Option<usize> {
    let me = tid()?;
    let mut g = STATE.lock().expect("model state");
    let run = g.run.as_mut()?;
    if run.aborted {
        drop(g);
        panic_abort();
    }
    let child = run.threads.len();
    let mut clock = run.threads[me].clock.clone();
    clock.tick(me);
    run.threads[me].clock = clock.clone();
    run.threads.push(ThreadState {
        name,
        status: Status::Running,
        pending: None,
        clock,
        held: Vec::new(),
        timed_out: false,
        registered: false,
    });
    Some(child)
}

/// Park the parent until the child's OS thread has registered.
pub(crate) fn await_registration(child: usize) {
    let mut g = STATE.lock().expect("model state");
    while g.run.as_ref().is_some_and(|r| !r.threads[child].registered && !r.aborted) {
        g = WAKE.wait(g).expect("model state");
    }
}

/// First call on the child OS thread: adopt the tid, park at the Start op,
/// and announce readiness — all under one lock, so the parent's next
/// decision always sees the child as a complete, parked participant.
pub(crate) fn register_child(child: usize) {
    TID.with(|t| t.set(Some(child)));
    let mut g = STATE.lock().expect("model state");
    let Some(run) = g.run.as_mut() else { return };
    run.threads[child].pending = Some(Op { kind: OpKind::Start, obj: 0, site: "thread start" });
    run.threads[child].status = Status::Ready;
    run.threads[child].registered = true;
    WAKE.notify_all();
    let _ = wait_granted(g, child);
}

/// Keep the OS handle so the explorer can join every thread at teardown.
pub(crate) fn adopt_os_handle(h: std::thread::JoinHandle<()>) {
    let mut g = STATE.lock().expect("model state");
    if let Some(run) = g.run.as_mut() {
        run.os_handles.push(h);
    } else {
        drop(g);
        let _ = h.join();
    }
}

/// Final event of a model thread: mark finished and hand off the schedule.
pub(crate) fn thread_exit() {
    let Some(me) = tid() else { return };
    TID.with(|t| t.set(None));
    let mut g = STATE.lock().expect("model state");
    let Some(run) = g.run.as_mut() else { return };
    trace(|| format!("t{me} exits"));
    run.threads[me].status = Status::Finished;
    if !run.aborted {
        // Exiting hands the baton to whoever is next (or detects the hang).
        run.decide();
    }
    WAKE.notify_all();
}

/// Blocking join on a model thread (the target tid).
pub(crate) fn join_thread(target: usize) -> Outcome {
    schedule(Op { kind: OpKind::Join { target }, obj: 0, site: "thread join" })
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

struct Frame {
    /// Choice this frame currently replays.
    choice: usize,
    /// Alternatives worth exploring at this decision.
    viable: Vec<usize>,
    tried: BTreeSet<usize>,
}

/// Exhaustively (within bounds) explore the schedules of `body`.
/// See [`super::explore`] for the public wrapper.
pub(crate) fn explore_impl(cfg: &Config, body: &(dyn Fn() + Sync)) -> super::ExploreReport {
    let mut stack: Vec<Frame> = Vec::new();
    let mut schedules: u64 = 0;
    let mut findings: Vec<Finding> = Vec::new();
    let mut all_lock_edges: Vec<(usize, usize, &'static str)> = Vec::new();
    let mut edge_labels: HashMap<usize, &'static str> = HashMap::new();
    let mut capped = false;

    loop {
        if schedules >= cfg.max_schedules {
            capped = true;
            break;
        }
        let replay: Vec<usize> = stack.iter().map(|f| f.choice).collect();
        // ---- one run -------------------------------------------------
        {
            let mut g = STATE.lock().expect("model state");
            assert!(g.run.is_none(), "nested explorations are not supported");
            g.run = Some(Run {
                threads: vec![ThreadState {
                    name: "main".into(),
                    status: Status::Running,
                    pending: None,
                    clock: VClock::new(),
                    held: Vec::new(),
                    timed_out: false,
                    registered: true,
                }],
                active: 0,
                granted: false,
                step: 0,
                replay,
                decisions: Vec::new(),
                objects: HashMap::new(),
                lock_edges: Vec::new(),
                obj_labels: HashMap::new(),
                findings: Vec::new(),
                aborted: false,
                os_handles: Vec::new(),
            });
        }
        TID.with(|t| t.set(Some(0)));
        let body_result = catch_unwind(AssertUnwindSafe(body));
        TID.with(|t| t.set(None));
        schedules += 1;

        // ---- teardown ------------------------------------------------
        let handles = {
            let mut g = STATE.lock().expect("model state");
            let run = g.run.as_mut().expect("run exists");
            run.threads[0].status = Status::Finished;
            run.aborted = true;
            WAKE.notify_all();
            std::mem::take(&mut run.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }
        let run = STATE.lock().expect("model state").run.take().expect("run exists");

        let mut run_findings = run.findings;
        if let Err(payload) = body_result {
            if !payload.is::<ModelAbort>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".into());
                run_findings.push(Finding {
                    kind: FindingKind::InvariantViolation,
                    site: "protocol body".into(),
                    detail: format!("schedule {} violated an invariant: {msg}", schedules - 1),
                });
            }
        }
        edge_labels.extend(run.obj_labels.iter().map(|(k, v)| (*k, *v)));
        all_lock_edges.extend(run.lock_edges.iter().copied());
        if !run_findings.is_empty() {
            findings.extend(run_findings);
            break; // first failing schedule wins, loom-style
        }

        // ---- backtrack -----------------------------------------------
        for d in run.decisions.iter().skip(stack.len()) {
            stack.push(Frame {
                choice: d.chosen,
                viable: viable_alternatives(d, cfg.preemption_bound),
                tried: BTreeSet::from([d.chosen]),
            });
        }
        let mut advanced = false;
        while let Some(top) = stack.last_mut() {
            if let Some(&alt) = top.viable.iter().find(|a| !top.tried.contains(a)) {
                top.tried.insert(alt);
                top.choice = alt;
                advanced = true;
                break;
            }
            stack.pop();
        }
        if !advanced {
            break; // DFS exhausted
        }
    }

    // Lock-order inversion: cycles in the aggregated acquisition graph are
    // reported even when no explored schedule deadlocked on them.
    if findings.iter().all(|f| f.kind != FindingKind::Deadlock) {
        if let Some(f) = lock_cycle_finding(&all_lock_edges, &edge_labels) {
            findings.push(f);
        }
    }

    super::ExploreReport { name: cfg.name, schedules, findings, capped }
}

/// Which alternatives at a recorded decision are worth exploring.
fn viable_alternatives(d: &Decision, bound: usize) -> Vec<usize> {
    let chosen_sig =
        d.enabled.iter().find(|(t, _)| *t == d.chosen).map(|(_, s)| *s).unwrap_or(OpSig::Control);
    d.enabled
        .iter()
        .filter(|(t, _)| *t != d.chosen)
        .filter(|(t, sig)| {
            if !d.prev_enabled {
                // Forced switch: scheduling is free, explore everything.
                return true;
            }
            // Preemptive switch: must fit the bound and actually conflict
            // with what ran (independent ops commute).
            let is_preemption = *t != d.prev;
            let budget_ok = !is_preemption || d.preemptions_before < bound;
            budget_ok && (!is_preemption || conflicts(*sig, chosen_sig))
        })
        .map(|(t, _)| *t)
        .collect()
}

fn lock_cycle_finding(
    edges: &[(usize, usize, &'static str)],
    labels: &HashMap<usize, &'static str>,
) -> Option<Finding> {
    let mut adj: HashMap<usize, Vec<(usize, &'static str)>> = HashMap::new();
    let mut dedup = BTreeSet::new();
    for &(a, b, site) in edges {
        if dedup.insert((a, b)) {
            adj.entry(a).or_default().push((b, site));
        }
    }
    // DFS cycle detection over the (tiny) acquisition graph.
    let nodes: Vec<usize> = adj.keys().copied().collect();
    let mut state: HashMap<usize, u8> = HashMap::new(); // 1 = on stack, 2 = done
    fn dfs(
        n: usize,
        adj: &HashMap<usize, Vec<(usize, &'static str)>>,
        state: &mut HashMap<usize, u8>,
        path: &mut Vec<(usize, &'static str)>,
    ) -> Option<Vec<(usize, &'static str)>> {
        state.insert(n, 1);
        for &(m, site) in adj.get(&n).into_iter().flatten() {
            match state.get(&m) {
                Some(1) => {
                    let mut cycle = path.clone();
                    cycle.push((m, site));
                    return Some(cycle);
                }
                Some(2) => {}
                _ => {
                    path.push((m, site));
                    if let Some(c) = dfs(m, adj, state, path) {
                        return Some(c);
                    }
                    path.pop();
                }
            }
        }
        state.insert(n, 2);
        None
    }
    for n in nodes {
        if !state.contains_key(&n) {
            let mut path = vec![(n, "start")];
            if let Some(cycle) = dfs(n, &adj, &mut state, &mut path) {
                let names: Vec<String> = cycle
                    .iter()
                    .map(|(o, _)| format!("`{}`", labels.get(o).unwrap_or(&"?")))
                    .collect();
                let site = cycle.last().map(|(_, s)| *s).unwrap_or("?");
                return Some(Finding {
                    kind: FindingKind::LockOrderInversion,
                    site: site.to_string(),
                    detail: format!(
                        "lock acquisition order forms a cycle: {} (closing acquisition at `{site}`)",
                        names.join(" -> ")
                    ),
                });
            }
        }
    }
    None
}
