//! The model-checking runtime behind the `model` feature.
//!
//! [`explore`] runs a closure many times, once per explored thread
//! schedule, with every `wknng_sync` primitive inside the closure driven by
//! the deterministic scheduler in `sched`. Findings (data races,
//! deadlocks, lost wakeups, lock-order inversions, invariant violations)
//! come back in an [`ExploreReport`].
//!
//! The protocol body must be *deterministic modulo scheduling*: no wall
//! clock reads that change control flow, no ambient randomness. Timeouts
//! (`Condvar::wait_timeout`, `recv_timeout`) are fine — the scheduler owns
//! them and explores both the wake and the timeout arm.

pub mod cell;
pub(crate) mod clock;
pub(crate) mod sched;
pub mod shim;

pub use cell::RaceCell;

/// What class of concurrency defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Two plain-data accesses with no happens-before edge between them
    /// (includes too-weak atomic orderings: `Relaxed` publishes nothing).
    DataRace,
    /// No thread can make progress and at least one is stuck on a lock,
    /// join, or non-timeout receive.
    Deadlock,
    /// Every stuck thread is parked in a wait that a notify/send was
    /// supposed to end — the signal was lost or never sent.
    LostWakeup,
    /// The aggregated lock-acquisition graph contains a cycle, even if no
    /// explored schedule actually deadlocked on it.
    LockOrderInversion,
    /// The protocol body panicked (a failed assertion) under a schedule.
    InvariantViolation,
}

impl FindingKind {
    pub fn as_str(self) -> &'static str {
        match self {
            FindingKind::DataRace => "data-race",
            FindingKind::Deadlock => "deadlock",
            FindingKind::LostWakeup => "lost-wakeup",
            FindingKind::LockOrderInversion => "lock-order-inversion",
            FindingKind::InvariantViolation => "invariant-violation",
        }
    }
}

/// One detected defect, anchored to the instrumentation site that tripped.
#[derive(Debug, Clone)]
pub struct Finding {
    pub kind: FindingKind,
    /// The call-site label (the `site` string of the op that detected it).
    pub site: String,
    pub detail: String,
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct Config {
    /// Name carried into the report (protocol identifier).
    pub name: &'static str,
    /// Maximum preemptive context switches along any explored path.
    /// Empirically, almost all real concurrency bugs manifest within 2
    /// preemptions; the CLI default is 2 and can be raised.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules (runaway protection).
    pub max_schedules: u64,
}

impl Config {
    pub fn new(name: &'static str) -> Config {
        Config { name, preemption_bound: 2, max_schedules: 50_000 }
    }

    pub fn preemption_bound(mut self, b: usize) -> Config {
        self.preemption_bound = b;
        self
    }

    pub fn max_schedules(mut self, m: u64) -> Config {
        self.max_schedules = m;
        self
    }
}

/// Result of exploring one protocol.
#[derive(Debug)]
pub struct ExploreReport {
    pub name: &'static str,
    /// Schedules actually executed.
    pub schedules: u64,
    pub findings: Vec<Finding>,
    /// True when exploration stopped at `max_schedules`, not exhaustion.
    pub capped: bool,
}

impl ExploreReport {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Explore the bounded schedules of `body`, returning every finding.
///
/// Explorations are process-global and exclusive: concurrent calls from
/// different test threads serialize on an internal lock. The body runs on
/// the calling thread as model-thread 0; threads it spawns through
/// [`shim::thread`] become model threads 1..N.
pub fn explore<F: Fn() + Sync>(cfg: Config, body: F) -> ExploreReport {
    // One exploration at a time per process: the scheduler state is global.
    static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|p| p.into_inner());
    // Panics are a normal part of exploration (aborting runs, protocol
    // bodies that deliberately panic under some schedule, supervised
    // workers being crash-tested thousands of times); the default hook
    // would print a backtrace banner for every one of them.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = sched::explore_impl(&cfg, &body);
    std::panic::set_hook(prev_hook);
    report
}

/// Re-check the abort flag. Loops that `catch_unwind` (the worker
/// supervisor) call this *outside* the catch so an aborting exploration can
/// unwind through them instead of being swallowed and retried forever.
/// No-op outside an active exploration (and in non-model builds, where the
/// facade exports a no-op of the same name).
pub fn abort_checkpoint() {
    sched::abort_checkpoint();
}
