//! Instrumented drop-in replacements for the `std::sync` / `std::thread`
//! surface the serve layer uses.
//!
//! Every type pairs the real `std` primitive with a model object id. While
//! a [`super::explore`] run is active on the calling thread, each operation
//! first passes through the scheduler (a scheduling point + happens-before
//! bookkeeping) and then performs the real operation — which by
//! construction cannot block, because the scheduler only grants operations
//! that are executable (a granted lock is free, a granted receive has a
//! message in flight). Outside a run every call is a straight delegation,
//! so `--features model` binaries still serve normally.
//!
//! `Arc`/`Weak` stay the real `std` types even under the model: snapshot
//! lifetime safety is exactly what `Arc` itself provides, and the protocols
//! under test synchronize through locks, channels and atomics — which are
//! the instrumented parts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use super::sched::{self, ModelAbort, Op, OpKind, Ord8, Outcome};

pub use std::sync::{Arc, LockResult, PoisonError, Weak};

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-checked mutex; `std::sync::Mutex` outside an exploration.
#[derive(Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    obj: usize,
}

/// Guard pairing the real guard with the model's notion of ownership.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Acquired through the scheduler (needs a model release on drop).
    model: bool,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value), obj: sched::next_obj_id() }
    }

    /// Like `new`, with a label carried into model findings.
    pub fn new_labeled(label: &'static str, value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value), obj: sched::labeled_obj_id(label) }
    }

    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let site = site_of(std::panic::Location::caller());
        match sched::schedule(Op { kind: OpKind::LockAcquire, obj: self.obj, site }) {
            Outcome::Passthrough => match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g), model: false }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    model: false,
                })),
            },
            _ => {
                // The scheduler granted us the lock, so the real mutex is
                // free (its holder released before the model did). Poison
                // from aborted runs is spurious — un-poison.
                let g = self.inner.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard { lock: self, inner: Some(g), model: true })
            }
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real unlock first, then the model release: anyone the release
        // enables will find the real mutex already free.
        self.inner = None;
        if self.model {
            sched::silent(Op { kind: OpKind::LockAcquire, obj: self.lock.obj, site: "unlock" });
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of a timed wait. The model cannot construct
/// `std::sync::WaitTimeoutResult`, so the facade exports its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-checked condition variable; `std::sync::Condvar` outside a run.
/// Under the model the real condvar is bypassed entirely: waits park in the
/// scheduler and notifies re-arm waiters there, so lost wakeups and
/// timeout/notify races are explored deterministically.
#[derive(Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
    obj: usize,
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new(), obj: sched::next_obj_id() }
    }

    pub fn new_labeled(label: &'static str) -> Condvar {
        Condvar { inner: std::sync::Condvar::new(), obj: sched::labeled_obj_id(label) }
    }

    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, None).0)
    }

    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        Ok(self.wait_inner(guard, Some(dur)))
    }

    #[track_caller]
    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        dur: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let site = site_of(std::panic::Location::caller());
        let lock_ref: &'a Mutex<T> = guard.lock;
        if !guard.model {
            // Passthrough: real condvar on the real guard.
            let inner = guard.inner.take().expect("guard holds the lock");
            std::mem::forget(guard);
            return match dur {
                None => {
                    let g = self.inner.wait(inner).unwrap_or_else(|p| p.into_inner());
                    (
                        MutexGuard { lock: lock_ref, inner: Some(g), model: false },
                        WaitTimeoutResult(false),
                    )
                }
                Some(d) => {
                    let (g, t) =
                        self.inner.wait_timeout(inner, d).unwrap_or_else(|p| p.into_inner());
                    (
                        MutexGuard { lock: lock_ref, inner: Some(g), model: false },
                        WaitTimeoutResult(t.timed_out()),
                    )
                }
            };
        }
        // Atomic release-and-park: drop the real guard, skip the model
        // release (the CondWait op performs it), then hand the scheduler
        // the wait. When `schedule` returns, the model has re-granted the
        // lock (Done = notified, TimedOut = timeout fired).
        guard.inner = None;
        std::mem::forget(guard);
        let outcome = sched::schedule(Op {
            kind: OpKind::CondWait { lock: lock_ref.obj, timeout: dur.is_some() },
            obj: self.obj,
            site,
        });
        let inner = lock_ref.inner.lock().unwrap_or_else(|p| p.into_inner());
        let g = MutexGuard { lock: lock_ref, inner: Some(inner), model: true };
        (g, WaitTimeoutResult(outcome == Outcome::TimedOut))
    }

    #[track_caller]
    pub fn notify_one(&self) {
        let site = site_of(std::panic::Location::caller());
        if sched::schedule(Op { kind: OpKind::CondNotify { all: false }, obj: self.obj, site })
            == Outcome::Passthrough
        {
            self.inner.notify_one();
        }
    }

    #[track_caller]
    pub fn notify_all(&self) {
        let site = site_of(std::panic::Location::caller());
        if sched::schedule(Op { kind: OpKind::CondNotify { all: true }, obj: self.obj, site })
            == Outcome::Passthrough
        {
            self.inner.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

pub mod atomic {
    //! Ordering-checked atomics: each op reports its declared ordering to
    //! the happens-before detector, so a `Relaxed` used where the protocol
    //! needs `Acquire`/`Release` shows up as a data race on the data it was
    //! supposed to publish.

    pub use std::sync::atomic::Ordering;

    use super::{sched, Op, OpKind, Ord8};

    macro_rules! model_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Model-checked counterpart of the std atomic of the same name.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
                obj: std::sync::atomic::AtomicUsize,
            }

            impl $name {
                pub const fn new(v: $prim) -> $name {
                    // Object ids are handed out lazily so `new` stays
                    // `const` (usable in statics).
                    $name { inner: <$std>::new(v), obj: std::sync::atomic::AtomicUsize::new(0) }
                }

                fn obj(&self) -> usize {
                    let o = self.obj.load(Ordering::Relaxed);
                    if o != 0 {
                        return o;
                    }
                    let n = sched::next_obj_id();
                    match self.obj.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed) {
                        Ok(_) => n,
                        Err(existing) => existing,
                    }
                }

                #[track_caller]
                pub fn load(&self, ord: Ordering) -> $prim {
                    let site = super::site_of(std::panic::Location::caller());
                    let _ = sched::schedule(Op {
                        kind: OpKind::AtomicLoad(Ord8::from_std(ord)),
                        obj: self.obj(),
                        site,
                    });
                    self.inner.load(ord)
                }

                #[track_caller]
                pub fn store(&self, v: $prim, ord: Ordering) {
                    let site = super::site_of(std::panic::Location::caller());
                    let _ = sched::schedule(Op {
                        kind: OpKind::AtomicStore(Ord8::from_std(ord)),
                        obj: self.obj(),
                        site,
                    });
                    self.inner.store(v, ord)
                }

                #[track_caller]
                pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord);
                    self.inner.swap(v, ord)
                }

                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.rmw(success);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                #[track_caller]
                fn rmw(&self, ord: Ordering) {
                    let site = super::site_of(std::panic::Location::caller());
                    let _ = sched::schedule(Op {
                        kind: OpKind::AtomicRmw(Ord8::from_std(ord)),
                        obj: self.obj(),
                        site,
                    });
                }
            }
        };
    }

    macro_rules! model_atomic_int {
        ($name:ident, $std:ty, $prim:ty) => {
            model_atomic!($name, $std, $prim);

            impl $name {
                #[track_caller]
                pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord);
                    self.inner.fetch_add(v, ord)
                }

                #[track_caller]
                pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord);
                    self.inner.fetch_sub(v, ord)
                }

                #[track_caller]
                pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                    self.rmw(ord);
                    self.inner.fetch_max(v, ord)
                }
            }
        };
    }

    model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
}

// ---------------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------------

pub mod mpsc {
    //! Model-checked `std::sync::mpsc` channel. Sends are release-class,
    //! receives acquire-class; receiver blocking and sender-drop
    //! disconnection are scheduler states, so a reply that can never come
    //! surfaces as a lost wakeup instead of a hung test.

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    use super::{sched, Op, OpKind, Outcome};
    use std::time::Duration;

    #[derive(Debug)]
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
        obj: usize,
    }

    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
        obj: usize,
    }

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        channel_labeled("channel")
    }

    /// Channel whose label shows up in model findings.
    pub fn channel_labeled<T>(label: &'static str) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let obj = sched::labeled_obj_id(label);
        (Sender { inner: tx, obj }, Receiver { inner: rx, obj })
    }

    impl<T> Sender<T> {
        #[track_caller]
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let site = super::site_of(std::panic::Location::caller());
            let _ = sched::schedule(Op { kind: OpKind::ChanSend, obj: self.obj, site });
            self.inner.send(t)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            sched::sender_cloned(self.obj);
            Sender { inner: self.inner.clone(), obj: self.obj }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // Never panics (drop-guard paths run during unwinding): the
            // model decrements live senders, which may enable a blocked
            // receiver (or prove nothing ever will — a lost wakeup).
            sched::silent(Op { kind: OpKind::ChanSend, obj: self.obj, site: "sender drop" });
        }
    }

    impl<T> Receiver<T> {
        #[track_caller]
        pub fn recv(&self) -> Result<T, RecvError> {
            let site = super::site_of(std::panic::Location::caller());
            // ChanData: a message is committed in the model; the sender's
            // real send lands before its next scheduling point, so the real
            // recv below cannot block past it. Disconnected and passthrough
            // both resolve through the real channel too.
            let _ = sched::schedule(Op {
                kind: OpKind::ChanRecv { timeout: false },
                obj: self.obj,
                site,
            });
            self.inner.recv()
        }

        #[track_caller]
        pub fn recv_timeout(&self, dur: Duration) -> Result<T, RecvTimeoutError> {
            let site = super::site_of(std::panic::Location::caller());
            match sched::schedule(Op {
                kind: OpKind::ChanRecv { timeout: true },
                obj: self.obj,
                site,
            }) {
                Outcome::Passthrough => self.inner.recv_timeout(dur),
                Outcome::TimedOut => Err(RecvTimeoutError::Timeout),
                Outcome::ChanDisconnected => Err(RecvTimeoutError::Disconnected),
                _ => self.inner.recv().map_err(|_| RecvTimeoutError::Disconnected),
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            // Modeled as a zero-duration timed receive.
            match self.recv_timeout(Duration::ZERO) {
                Ok(v) => Ok(v),
                Err(RecvTimeoutError::Timeout) => Err(TryRecvError::Empty),
                Err(RecvTimeoutError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            sched::silent(Op {
                kind: OpKind::ChanRecv { timeout: false },
                obj: self.obj,
                site: "receiver drop",
            });
        }
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

pub mod thread {
    //! Model-checked threads. Inside an exploration, spawn registers the
    //! child with the scheduler (a deterministic rendezvous) and `join`
    //! becomes a scheduling point; outside, everything is `std::thread`.

    pub use std::thread::Result;

    use super::{catch_unwind, sched, AssertUnwindSafe, ModelAbort, Op, OpKind};
    use std::time::Duration;

    pub enum JoinHandle<T> {
        Real(std::thread::JoinHandle<T>),
        Model {
            tid: usize,
            result: std::sync::Arc<std::sync::Mutex<Option<std::thread::Result<T>>>>,
        },
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                JoinHandle::Real(_) => f.write_str("JoinHandle::Real"),
                JoinHandle::Model { tid, .. } => write!(f, "JoinHandle::Model({tid})"),
            }
        }
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self {
                JoinHandle::Real(h) => h.join(),
                JoinHandle::Model { tid, result } => {
                    let _ = sched::join_thread(tid);
                    result
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("joined model thread published a result")
                }
            }
        }

        pub fn is_finished(&self) -> bool {
            match self {
                JoinHandle::Real(h) => h.is_finished(),
                JoinHandle::Model { result, .. } => {
                    result.lock().unwrap_or_else(|p| p.into_inner()).is_some()
                }
            }
        }
    }

    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder { name: None }
        }

        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if !sched::participating() {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                return b.spawn(f).map(JoinHandle::Real);
            }
            let name = self.name.unwrap_or_else(|| "model".into());
            let tid = sched::spawn_child(name.clone()).expect("active exploration");
            let result = std::sync::Arc::new(std::sync::Mutex::new(None));
            let slot = result.clone();
            let h = std::thread::Builder::new().name(name).spawn(move || {
                sched::register_child(tid);
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(v));
                    }
                    Err(p) if p.is::<ModelAbort>() => {
                        // Torn down with the run; no result to publish.
                    }
                    Err(p) => {
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(Err(p));
                    }
                }
                sched::thread_exit();
            })?;
            sched::adopt_os_handle(h);
            sched::await_registration(tid);
            Ok(JoinHandle::Model { tid, result })
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// Under the model, sleeping is just a yield point (the scheduler owns
    /// time); outside, a real sleep.
    #[track_caller]
    pub fn sleep(dur: Duration) {
        let site = super::site_of(std::panic::Location::caller());
        if sched::schedule(Op { kind: OpKind::Sleep, obj: 0, site }) == super::Outcome::Passthrough
        {
            std::thread::sleep(dur);
        }
    }
}

/// Leak a `file:line` label for finding sites. Sites are a small static
/// set (one per instrumented call site), so the leak is bounded.
fn site_of(loc: &'static std::panic::Location<'static>) -> &'static str {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static SITES: OnceLock<Mutex<HashMap<(&'static str, u32), &'static str>>> = OnceLock::new();
    let map = SITES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = map.lock().unwrap_or_else(|p| p.into_inner());
    g.entry((loc.file(), loc.line()))
        .or_insert_with(|| Box::leak(format!("{}:{}", loc.file(), loc.line()).into_boxed_str()))
}
