//! # wknng-sync — the workspace's concurrency facade
//!
//! Host-side concurrency in this workspace (the serve/epoch layer: epoch
//! pin/publish/retire, the three-phase mutator, supervised workers, ticket
//! drop guards, the shed controller) is written against this crate instead
//! of `std::sync` / `std::thread` directly.
//!
//! * **Normal builds** (no features): every name here is a plain re-export
//!   of the `std` primitive — zero cost, zero behavior change. The facade
//!   is purely a vocabulary.
//! * **`model` feature**: the same names resolve to instrumented wrappers
//!   (`model::shim`) that, while a `model::explore` run is active, hand
//!   every synchronization operation to a deterministic scheduler. The
//!   scheduler enumerates bounded thread interleavings (DFS with
//!   partial-order conflict reduction and a preemption bound) and runs a
//!   vector-clock happens-before detector over every explored schedule,
//!   flagging data races, deadlocks, lost wakeups, lock-order inversions,
//!   and too-weak atomic orderings. Outside an active exploration the
//!   wrappers delegate straight to `std`, so code compiled with the feature
//!   still runs normally (the `wknng race` binary serves *and* checks).
//!
//! The two halves never mix: `cfg` picks exactly one set of exports.

#[cfg(feature = "model")]
pub mod model;

// ---------------------------------------------------------------------------
// Normal builds: the facade is `std`, verbatim.
// ---------------------------------------------------------------------------

#[cfg(not(feature = "model"))]
pub use std::sync::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult, Weak,
};

#[cfg(not(feature = "model"))]
pub use std::sync::atomic;

#[cfg(not(feature = "model"))]
pub use std::sync::mpsc;

#[cfg(not(feature = "model"))]
pub use std::thread;

// ---------------------------------------------------------------------------
// Model builds: the instrumented shim under the scheduler.
// ---------------------------------------------------------------------------

#[cfg(feature = "model")]
pub use model::shim::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult, Weak,
};

#[cfg(feature = "model")]
pub use model::shim::atomic;

#[cfg(feature = "model")]
pub use model::shim::mpsc;

#[cfg(feature = "model")]
pub use model::shim::thread;

#[cfg(feature = "model")]
pub use model::abort_checkpoint;

/// Abort checkpoint for supervised `catch_unwind` loops. In normal builds
/// there is nothing to abort — the call compiles to nothing. See
/// `model::abort_checkpoint` for the model-build contract.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn abort_checkpoint() {}

// ---------------------------------------------------------------------------
// Labeled constructors — available in both builds so protocol code can name
// its synchronization objects unconditionally. Model findings print the
// label ("lock `serve-queue`"); normal builds ignore it at zero cost.
// ---------------------------------------------------------------------------

/// A [`Mutex`] whose label shows up in model findings.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn mutex_labeled<T>(_label: &'static str, value: T) -> Mutex<T> {
    Mutex::new(value)
}

/// A [`Mutex`] whose label shows up in model findings.
#[cfg(feature = "model")]
pub fn mutex_labeled<T>(label: &'static str, value: T) -> Mutex<T> {
    Mutex::new_labeled(label, value)
}

/// A [`Condvar`] whose label shows up in model findings.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn condvar_labeled(_label: &'static str) -> Condvar {
    Condvar::new()
}

/// A [`Condvar`] whose label shows up in model findings.
#[cfg(feature = "model")]
pub fn condvar_labeled(label: &'static str) -> Condvar {
    Condvar::new_labeled(label)
}

/// An [`mpsc`] channel whose label shows up in model findings.
#[cfg(not(feature = "model"))]
#[inline(always)]
pub fn channel_labeled<T>(_label: &'static str) -> (mpsc::Sender<T>, mpsc::Receiver<T>) {
    mpsc::channel()
}

/// An [`mpsc`] channel whose label shows up in model findings.
#[cfg(feature = "model")]
pub fn channel_labeled<T>(label: &'static str) -> (mpsc::Sender<T>, mpsc::Receiver<T>) {
    mpsc::channel_labeled(label)
}
