//! Detector calibration on toy protocols: each defect class the checker
//! claims to find is demonstrated on a minimal protocol seeded with exactly
//! that defect, and the corrected protocol is shown clean. The serve-layer
//! suites build on this foundation (crates/serve/src/race.rs).

#![cfg(feature = "model")]

use std::sync::atomic::Ordering;

use wknng_sync::model::{explore, Config, FindingKind, RaceCell};
use wknng_sync::{atomic::AtomicU64, mpsc, thread, Arc, Condvar, Mutex};

fn kinds(report: &wknng_sync::model::ExploreReport) -> Vec<FindingKind> {
    report.findings.iter().map(|f| f.kind).collect()
}

#[test]
fn mutex_protected_counter_is_clean_and_explores_multiple_schedules() {
    let report = explore(Config::new("toy-counter"), || {
        let n = Arc::new(Mutex::new_labeled("counter", 0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(report.clean(), "unexpected findings: {:?}", report.findings);
    assert!(!report.capped);
    assert!(
        report.schedules > 1,
        "conflicting lock acquisitions must fork schedules, got {}",
        report.schedules
    );
}

#[test]
fn unsynchronized_writes_are_a_data_race() {
    let report = explore(Config::new("toy-racy-writes"), || {
        let cell = Arc::new(RaceCell::new("shared", 0u32));
        let c2 = cell.clone();
        let h = thread::spawn(move || c2.write("writer thread", 1));
        cell.write("main thread", 2);
        h.join().unwrap();
    });
    assert_eq!(kinds(&report), vec![FindingKind::DataRace], "findings: {:?}", report.findings);
    assert!(report.findings[0].detail.contains("shared"));
}

#[test]
fn relaxed_publication_is_a_data_race_and_release_acquire_is_not() {
    let run = |store_ord: Ordering| {
        explore(Config::new("toy-publication"), move || {
            let cell = Arc::new(RaceCell::new("payload", 0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let (c2, f2) = (cell.clone(), flag.clone());
            let w = thread::spawn(move || {
                c2.write("publish payload", 7);
                f2.store(1, store_ord);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(cell.read("consume payload"), 7);
            }
            w.join().unwrap();
        })
    };
    let relaxed = run(Ordering::Relaxed);
    assert_eq!(
        kinds(&relaxed),
        vec![FindingKind::DataRace],
        "Relaxed store publishes no happens-before edge: {:?}",
        relaxed.findings
    );
    let release = run(Ordering::Release);
    assert!(release.clean(), "release/acquire pair orders the payload: {:?}", release.findings);
}

#[test]
fn inverted_lock_order_is_flagged_even_without_a_manifest_deadlock() {
    let report = explore(Config::new("toy-lock-order"), || {
        let a = Arc::new(Mutex::new_labeled("lock-a", ()));
        let b = Arc::new(Mutex::new_labeled("lock-b", ()));
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            let _b = b2.lock().unwrap();
            let _a = a2.lock().unwrap();
        });
        {
            let _a = a.lock().unwrap();
            let _b = b.lock().unwrap();
        }
        h.join().unwrap();
    });
    assert!(
        kinds(&report).contains(&FindingKind::LockOrderInversion)
            || kinds(&report).contains(&FindingKind::Deadlock),
        "inverted acquisition order must be flagged: {:?}",
        report.findings
    );
}

#[test]
fn notify_before_wait_is_a_lost_wakeup() {
    let report = explore(Config::new("toy-lost-wakeup"), || {
        let pair =
            Arc::new((Mutex::new_labeled("wake-lock", false), Condvar::new_labeled("wake-cv")));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cv) = &*p2;
            let g = lock.lock().unwrap();
            // BUG: waits unconditionally — a notify that fired before this
            // point is lost and nobody will ever send another.
            let _g = cv.wait(g).unwrap();
        });
        let (lock, cv) = &*pair;
        let _g = lock.lock().unwrap();
        cv.notify_one();
        drop(_g);
        h.join().unwrap();
    });
    assert_eq!(kinds(&report), vec![FindingKind::LostWakeup], "findings: {:?}", report.findings);
}

#[test]
fn reply_that_never_comes_is_reported_not_hung() {
    let report = explore(Config::new("toy-dropped-reply"), || {
        let (job_tx, job_rx) = mpsc::channel_labeled::<mpsc::Sender<u32>>("job queue");
        let (stop_tx, stop_rx) = mpsc::channel_labeled::<()>("stop");
        let worker = thread::spawn(move || {
            // BUG: stashes the job (keeping its reply sender alive) and
            // goes back to waiting instead of answering.
            let stashed = job_rx.recv().ok();
            let _ = stop_rx.recv();
            drop(stashed);
        });
        let (reply_tx, reply_rx) = mpsc::channel_labeled::<u32>("reply");
        job_tx.send(reply_tx).unwrap();
        let _ = reply_rx.recv();
        drop(stop_tx);
        worker.join().unwrap();
    });
    assert_eq!(kinds(&report), vec![FindingKind::LostWakeup], "findings: {:?}", report.findings);
}

#[test]
fn dropped_reply_sender_resolves_the_receiver_cleanly() {
    let report = explore(Config::new("toy-drop-guard"), || {
        let (job_tx, job_rx) = mpsc::channel_labeled::<mpsc::Sender<u32>>("job queue");
        let worker = thread::spawn(move || {
            // Drop-guard discipline: the job (and its reply sender) is
            // dropped, which resolves the waiting receiver as Disconnected
            // instead of hanging it.
            drop(job_rx.recv().ok());
        });
        let (reply_tx, reply_rx) = mpsc::channel_labeled::<u32>("reply");
        job_tx.send(reply_tx).unwrap();
        assert!(reply_rx.recv().is_err(), "dropped sender must surface as disconnect");
        worker.join().unwrap();
    });
    assert!(report.clean(), "findings: {:?}", report.findings);
    assert!(!report.capped);
}

#[test]
fn invariant_violations_surface_with_the_failing_schedule() {
    let report = explore(Config::new("toy-invariant"), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let h = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        let seen = n.load(Ordering::SeqCst);
        h.join().unwrap();
        // Fails on schedules where the increment lands first.
        assert_eq!(seen, 0, "seeded invariant failure");
    });
    assert_eq!(
        kinds(&report),
        vec![FindingKind::InvariantViolation],
        "findings: {:?}",
        report.findings
    );
}
