//! Sparse high-dimensional affinities from a K-NN graph.
//!
//! t-SNE's input side: per-point Gaussian kernels calibrated to a target
//! perplexity over the K nearest neighbors, then symmetrised and normalised.
//! Using the approximate K-NNG here (instead of all n² pairs) is exactly the
//! role the paper builds w-KNNG for.

use rayon::prelude::*;

use wknng_data::Neighbor;

/// A symmetric sparse affinity matrix in row lists: `rows[i]` holds
/// `(j, p_ij)` with `Σ p_ij = 1` over the whole matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Affinities {
    /// Per-row `(column, probability)` entries.
    pub rows: Vec<Vec<(u32, f64)>>,
}

impl Affinities {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total probability mass (≈ 1 after construction).
    pub fn total_mass(&self) -> f64 {
        self.rows.iter().flatten().map(|&(_, p)| p).sum()
    }
}

/// Binary-search the Gaussian precision `beta` so the conditional
/// distribution over `dists` has entropy `ln(perplexity)`; returns the
/// normalised probabilities. Distances are squared (the t-SNE convention).
pub fn calibrate_row(dists: &[f32], perplexity: f64) -> Vec<f64> {
    let m = dists.len();
    if m == 0 {
        return Vec::new();
    }
    if m == 1 {
        return vec![1.0];
    }
    let target = perplexity.clamp(1.0 + 1e-9, m as f64).ln();
    // Stabilise by shifting with the minimum distance (exp overflow guard).
    let dmin = dists.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
    let mut beta = 1.0f64;
    let (mut lo, mut hi) = (0.0f64, f64::INFINITY);
    let mut probs = vec![0.0f64; m];
    for _ in 0..100 {
        let mut sum = 0.0;
        for (p, &d) in probs.iter_mut().zip(dists) {
            *p = (-(d as f64 - dmin) * beta).exp();
            sum += *p;
        }
        let mut entropy = 0.0;
        for p in probs.iter_mut() {
            *p /= sum;
            if *p > 1e-300 {
                entropy -= *p * p.ln();
            }
        }
        if (entropy - target).abs() < 1e-7 {
            break;
        }
        if entropy > target {
            // Distribution too flat: sharpen.
            lo = beta;
            beta = if hi.is_finite() { (beta + hi) / 2.0 } else { beta * 2.0 };
        } else {
            hi = beta;
            beta = (beta + lo) / 2.0;
        }
    }
    probs
}

/// Build symmetric normalised affinities from neighbor lists.
///
/// `P = (P|cond + P|condᵀ) / (2n)` restricted to the K-NNG sparsity pattern —
/// the standard Barnes-Hut/FIt-SNE input construction.
pub fn affinities_from_knng(lists: &[Vec<Neighbor>], perplexity: f64) -> Affinities {
    let n = lists.len();
    let conditional: Vec<Vec<(u32, f64)>> = lists
        .par_iter()
        .map(|list| {
            let dists: Vec<f32> = list.iter().map(|nb| nb.dist).collect();
            let probs = calibrate_row(&dists, perplexity);
            list.iter().zip(probs).map(|(nb, p)| (nb.index, p)).collect()
        })
        .collect();

    let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    let scale = 1.0 / (2.0 * n.max(1) as f64);
    for (i, row) in conditional.iter().enumerate() {
        for &(j, p) in row {
            rows[i].push((j, p * scale));
            rows[j as usize].push((i as u32, p * scale));
        }
    }
    // Merge duplicate (i, j) contributions.
    for row in &mut rows {
        row.sort_unstable_by_key(|&(j, _)| j);
        let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
        for &(j, p) in row.iter() {
            match merged.last_mut() {
                Some((lj, lp)) if *lj == j => *lp += p,
                _ => merged.push((j, p)),
            }
        }
        *row = merged;
    }
    // Renormalise to total mass 1 (rows with empty neighbor lists contribute
    // nothing, so the 1/2n prefactor alone can undershoot on degenerate
    // graphs).
    let total: f64 = rows.iter().flatten().map(|&(_, p)| p).sum();
    if total > 0.0 {
        let inv = 1.0 / total;
        for row in &mut rows {
            for (_, p) in row.iter_mut() {
                *p *= inv;
            }
        }
    }
    Affinities { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_the_target_entropy() {
        let dists: Vec<f32> = (1..=20).map(|i| i as f32).collect();
        for perp in [2.0f64, 5.0, 10.0] {
            let probs = calibrate_row(&dists, perp);
            let sum: f64 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            let entropy: f64 = -probs.iter().filter(|&&p| p > 0.0).map(|p| p * p.ln()).sum::<f64>();
            assert!(
                (entropy - perp.ln()).abs() < 1e-3,
                "perplexity {perp}: entropy {entropy} vs target {}",
                perp.ln()
            );
        }
    }

    #[test]
    fn closer_neighbors_get_more_mass() {
        let probs = calibrate_row(&[1.0, 4.0, 9.0, 16.0], 2.0);
        for w in probs.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn degenerate_rows() {
        assert!(calibrate_row(&[], 5.0).is_empty());
        let one = calibrate_row(&[3.0], 5.0);
        assert_eq!(one, vec![1.0]);
        // All-equal distances: uniform.
        let flat = calibrate_row(&[2.0; 8], 4.0);
        for p in &flat {
            assert!((p - 0.125).abs() < 1e-9);
        }
    }

    #[test]
    fn affinities_are_symmetric_and_normalised() {
        let lists = vec![
            vec![Neighbor::new(1, 1.0), Neighbor::new(2, 4.0)],
            vec![Neighbor::new(0, 1.0)],
            vec![Neighbor::new(0, 4.0), Neighbor::new(1, 2.0)],
        ];
        let aff = affinities_from_knng(&lists, 2.0);
        assert_eq!(aff.len(), 3);
        assert!((aff.total_mass() - 1.0).abs() < 1e-9);
        // Symmetry: p_ij == p_ji.
        let get = |i: usize, j: u32| -> f64 {
            aff.rows[i].iter().find(|&&(c, _)| c == j).map(|&(_, p)| p).unwrap_or(0.0)
        };
        for i in 0..3 {
            for j in 0..3u32 {
                assert!((get(i, j) - get(j as usize, i as u32)).abs() < 1e-12);
            }
        }
        // No self affinities, no duplicate columns.
        for (i, row) in aff.rows.iter().enumerate() {
            assert!(row.iter().all(|&(j, _)| j as usize != i));
            let mut cols: Vec<u32> = row.iter().map(|&(j, _)| j).collect();
            cols.dedup();
            assert_eq!(cols.len(), row.len());
        }
    }
}
