//! The t-SNE gradient-descent engine (exact repulsion, suitable for the
//! 10²–10⁴-point regime of this repository's experiments).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::affinity::Affinities;

/// t-SNE optimisation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneParams {
    /// Output dimensionality (2 or 3 for visualisation).
    pub out_dim: usize,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Learning rate (η).
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
    /// Seed for the initial embedding.
    pub seed: u64,
}

impl Default for TsneParams {
    fn default() -> Self {
        TsneParams {
            out_dim: 2,
            iters: 300,
            learning_rate: 100.0,
            momentum: 0.8,
            exaggeration: 12.0,
            seed: 0x75EE,
        }
    }
}

/// A finished embedding plus convergence diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Row-major `n × out_dim` coordinates.
    pub coords: Vec<f64>,
    /// Output dimensionality.
    pub out_dim: usize,
    /// KL divergence at the start and end of the (post-exaggeration) run.
    pub kl_initial: f64,
    /// Final KL divergence.
    pub kl_final: f64,
}

impl Embedding {
    /// Point `i`'s embedded coordinates.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.out_dim..(i + 1) * self.out_dim]
    }

    /// Number of embedded points.
    pub fn len(&self) -> usize {
        self.coords.len().checked_div(self.out_dim).unwrap_or(0)
    }

    /// True when the embedding holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// Run t-SNE over the affinity matrix.
///
/// Exact O(n²) repulsion per iteration; deterministic in `params.seed`.
pub fn embed(aff: &Affinities, params: &TsneParams) -> Embedding {
    let n = aff.len();
    let d = params.out_dim.max(1);
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x0DE5_16E0);
    let mut y: Vec<f64> = (0..n * d).map(|_| rng.gen_range(-1e-4..1e-4)).collect();
    let mut vel = vec![0.0f64; n * d];
    let mut kl_initial = f64::NAN;
    let mut kl_final = f64::NAN;
    if n == 0 {
        return Embedding { coords: y, out_dim: d, kl_initial: 0.0, kl_final: 0.0 };
    }

    let exag_end = params.iters / 4;
    for it in 0..params.iters {
        let exaggeration = if it < exag_end { params.exaggeration } else { 1.0 };

        // Student-t kernel normaliser Z = Σ_{i≠j} (1 + |y_i - y_j|²)⁻¹.
        let mut z = 0.0f64;
        let mut q_unnorm = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let mut dist2 = 0.0;
                for c in 0..d {
                    let diff = y[i * d + c] - y[j * d + c];
                    dist2 += diff * diff;
                }
                let q = 1.0 / (1.0 + dist2);
                q_unnorm[i * n + j] = q;
                z += 2.0 * q;
            }
        }
        let z = z.max(1e-300);

        let mut grad = vec![0.0f64; n * d];
        // Attraction over the sparse affinities.
        for (i, row) in aff.rows.iter().enumerate() {
            for &(j, p) in row {
                let j = j as usize;
                let mut dist2 = 0.0;
                for c in 0..d {
                    let diff = y[i * d + c] - y[j * d + c];
                    dist2 += diff * diff;
                }
                let q = 1.0 / (1.0 + dist2);
                for c in 0..d {
                    let diff = y[i * d + c] - y[j * d + c];
                    grad[i * d + c] += 4.0 * exaggeration * p * q * diff;
                }
            }
        }
        // Repulsion over all pairs.
        for i in 0..n {
            for j in i + 1..n {
                let q = q_unnorm[i * n + j];
                let f = 4.0 * (q / z) * q;
                for c in 0..d {
                    let diff = y[i * d + c] - y[j * d + c];
                    grad[i * d + c] -= f * diff;
                    grad[j * d + c] += f * diff;
                }
            }
        }

        for (yi, (v, g)) in y.iter_mut().zip(vel.iter_mut().zip(&grad)) {
            *v = params.momentum * *v - params.learning_rate * g;
            *yi += *v;
        }

        // KL diagnostics without the exaggeration factor.
        if it == exag_end || it + 1 == params.iters {
            let mut kl = 0.0f64;
            for (i, row) in aff.rows.iter().enumerate() {
                for &(j, p) in row {
                    let j = j as usize;
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    let q = (q_unnorm[a * n + b] / z).max(1e-300);
                    if p > 0.0 {
                        kl += p * (p / q).ln();
                    }
                }
            }
            if it == exag_end {
                kl_initial = kl;
            } else {
                kl_final = kl;
            }
        }
    }

    Embedding { coords: y, out_dim: d, kl_initial, kl_final }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affinity::affinities_from_knng;
    use wknng_core::WknngBuilder;
    use wknng_data::DatasetSpec;

    fn cluster_affinities(n: usize) -> (Affinities, usize) {
        let clusters = 5;
        let vs = DatasetSpec::GaussianClusters { n, dim: 32, clusters, spread: 0.1 }
            .generate(123)
            .vectors;
        let (g, _) = WknngBuilder::new(10)
            .trees(6)
            .leaf_size(24)
            .exploration(1)
            .seed(7)
            .build_native(&vs)
            .expect("valid");
        (affinities_from_knng(&g.lists, 5.0), clusters)
    }

    #[test]
    fn embedding_separates_clusters_and_reduces_kl() {
        let n = 250;
        let (aff, clusters) = cluster_affinities(n);
        let emb = embed(&aff, &TsneParams { iters: 200, ..TsneParams::default() });
        assert_eq!(emb.len(), n);
        assert!(
            emb.kl_final < emb.kl_initial,
            "KL must decrease: {} -> {}",
            emb.kl_initial,
            emb.kl_final
        );
        // Same-cluster pairs closer than cross-cluster pairs, on average.
        let (mut same, mut same_n, mut cross, mut cross_n) = (0.0, 0u64, 0.0, 0u64);
        for i in 0..n {
            for j in i + 1..n {
                let dx = emb.point(i)[0] - emb.point(j)[0];
                let dy = emb.point(i)[1] - emb.point(j)[1];
                let dist = (dx * dx + dy * dy).sqrt();
                if i % clusters == j % clusters {
                    same += dist;
                    same_n += 1;
                } else {
                    cross += dist;
                    cross_n += 1;
                }
            }
        }
        let ratio = (cross / cross_n as f64) / (same / same_n as f64);
        assert!(ratio > 1.5, "separation ratio {ratio:.2}");
    }

    #[test]
    fn deterministic_in_seed() {
        let (aff, _) = cluster_affinities(80);
        let p = TsneParams { iters: 50, ..TsneParams::default() };
        let a = embed(&aff, &p);
        let b = embed(&aff, &p);
        assert_eq!(a, b);
        let c = embed(&aff, &TsneParams { seed: 9, ..p });
        assert_ne!(a.coords, c.coords);
    }

    #[test]
    fn empty_input_is_fine() {
        let emb = embed(&Affinities { rows: vec![] }, &TsneParams::default());
        assert!(emb.is_empty());
    }

    #[test]
    fn three_dimensional_output() {
        let (aff, _) = cluster_affinities(60);
        let emb = embed(&aff, &TsneParams { out_dim: 3, iters: 30, ..TsneParams::default() });
        assert_eq!(emb.point(0).len(), 3);
        assert_eq!(emb.len(), 60);
    }
}
