//! # wknng-tsne — t-SNE over approximate K-NN-graph affinities
//!
//! The motivating application named in the paper's abstract: t-SNE needs,
//! for every point, a sparse set of high-dimensional affinities over its K
//! nearest neighbors, and K-NNG construction dominates its preprocessing at
//! scale. This crate supplies the application side:
//!
//! * [`affinities_from_knng`] — perplexity-calibrated, symmetrised sparse
//!   affinities from any neighbor lists ([`calibrate_row`] is the standard
//!   per-point entropy binary search);
//! * [`embed()`](embed()) — the gradient-descent engine (momentum, early exaggeration,
//!   Student-t kernel, exact repulsion) with KL diagnostics;
//! * [`tsne_via_wknng`] — the whole pipeline in one call.
//!
//! ```
//! use wknng_data::DatasetSpec;
//! use wknng_tsne::{tsne_via_wknng, TsneParams};
//!
//! let vs = DatasetSpec::GaussianClusters { n: 120, dim: 16, clusters: 4, spread: 0.1 }
//!     .generate(1)
//!     .vectors;
//! let emb = tsne_via_wknng(&vs, 10, 5.0, &TsneParams { iters: 60, ..TsneParams::default() })
//!     .unwrap();
//! assert_eq!(emb.len(), 120);
//! assert!(emb.kl_final.is_finite());
//! ```

pub mod affinity;
pub mod embed;

pub use affinity::{affinities_from_knng, calibrate_row, Affinities};
pub use embed::{embed, Embedding, TsneParams};

use wknng_core::{KnngError, WknngBuilder};
use wknng_data::VectorSet;

/// End-to-end pipeline: build the approximate K-NNG with w-KNNG, calibrate
/// affinities at `perplexity`, and run the embedding.
pub fn tsne_via_wknng(
    vs: &VectorSet,
    k: usize,
    perplexity: f64,
    params: &TsneParams,
) -> Result<Embedding, KnngError> {
    let (graph, _) = WknngBuilder::new(k)
        .trees(6)
        .leaf_size((4 * k).max(16))
        .exploration(1)
        .seed(params.seed)
        .build_native(vs)?;
    let aff = affinities_from_knng(&graph.lists, perplexity);
    Ok(embed(&aff, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    #[test]
    fn pipeline_surfaces_graph_errors() {
        let vs = DatasetSpec::UniformCube { n: 5, dim: 2 }.generate(0).vectors;
        assert!(tsne_via_wknng(&vs, 10, 5.0, &TsneParams::default()).is_err());
    }
}
