//! Property tests for the t-SNE affinity construction.

use proptest::prelude::*;
use wknng_data::Neighbor;
use wknng_tsne::{affinities_from_knng, calibrate_row};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn calibration_is_a_distribution(
        dists in prop::collection::vec(0.0f32..100.0, 1..40),
        perp in 1.5f64..30.0,
    ) {
        let probs = calibrate_row(&dists, perp);
        prop_assert_eq!(probs.len(), dists.len());
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
    }

    #[test]
    fn calibration_is_monotone_in_distance(
        mut dists in prop::collection::vec(0.0f32..100.0, 2..30),
        perp in 1.5f64..10.0,
    ) {
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let probs = calibrate_row(&dists, perp);
        for w in probs.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn affinities_always_symmetric(n in 2usize..30, k in 1usize..5, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let lists: Vec<Vec<Neighbor>> = (0..n)
            .map(|i| {
                let mut list = Vec::new();
                for _ in 0..k {
                    let j = rng.gen_range(0..n) as u32;
                    if j as usize != i && !list.iter().any(|nb: &Neighbor| nb.index == j) {
                        list.push(Neighbor::new(j, rng.gen_range(0.0..10.0f32)));
                    }
                }
                list.sort_by(|a, b| a.key().partial_cmp(&b.key()).unwrap());
                list
            })
            .collect();
        let aff = affinities_from_knng(&lists, 3.0);
        let total = aff.total_mass();
        let has_edges = lists.iter().any(|l| !l.is_empty());
        if has_edges {
            prop_assert!((total - 1.0).abs() < 1e-9, "mass {}", total);
        }
        let get = |i: usize, j: u32| -> f64 {
            aff.rows[i].iter().find(|&&(c, _)| c == j).map(|&(_, p)| p).unwrap_or(0.0)
        };
        for i in 0..n {
            for &(j, _) in &aff.rows[i] {
                prop_assert!((get(i, j) - get(j as usize, i as u32)).abs() < 1e-12);
            }
        }
    }
}
