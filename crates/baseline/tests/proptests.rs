//! Property tests for the baseline methods.

use proptest::prelude::*;
use wknng_baseline::{
    brute_force_warpselect, nn_descent, train_kmeans, Hnsw, HnswParams, IvfFlat, IvfParams,
    NnDescentParams,
};
use wknng_core::recall;
use wknng_data::{exact_knn, DatasetSpec, Metric};
use wknng_simt::DeviceConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kmeans_always_partitions(n in 5usize..120, dim in 1usize..8, nlist in 1usize..10, seed in any::<u64>()) {
        let vs = DatasetSpec::UniformCube { n, dim }.generate(seed).vectors;
        let km = train_kmeans(&vs, nlist, 8, seed);
        prop_assert_eq!(km.assignment.len(), n);
        prop_assert!(km.nlist <= n);
        for &a in &km.assignment {
            prop_assert!((a as usize) < km.nlist);
        }
        prop_assert!(km.centroids.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ivf_full_probe_always_exact(n in 10usize..100, dim in 1usize..8, nlist in 1usize..8, seed in any::<u64>()) {
        let k = 3.min(n - 1);
        let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 3, spread: 0.4 }
            .generate(seed)
            .vectors;
        let ivf = IvfFlat::build(&vs, IvfParams { nlist, train_iters: 5, seed });
        let got = ivf.knng(&vs, k, ivf.nlist());
        let truth = exact_knn(&vs, k, Metric::SquaredL2);
        prop_assert_eq!(recall(&got, &truth), 1.0);
    }

    #[test]
    fn warpselect_exact_on_random_shapes(n in 5usize..80, dim in 1usize..20, k in 1usize..12, seed in any::<u64>()) {
        let vs = DatasetSpec::UniformCube { n, dim }.generate(seed).vectors;
        let dev = DeviceConfig::test_tiny();
        let (got, _) = brute_force_warpselect(&vs, k, &dev);
        let truth = exact_knn(&vs, k, Metric::SquaredL2);
        for (g, t) in got.iter().zip(&truth) {
            let gi: Vec<u32> = g.iter().map(|nb| nb.index).collect();
            let ti: Vec<u32> = t.iter().map(|nb| nb.index).collect();
            prop_assert_eq!(gi, ti);
        }
    }

    #[test]
    fn hnsw_graphs_are_well_formed(n in 10usize..100, seed in any::<u64>()) {
        let k = 4.min(n - 1);
        let vs = DatasetSpec::GaussianClusters { n, dim: 6, clusters: 3, spread: 0.3 }
            .generate(seed)
            .vectors;
        let index = Hnsw::build(&vs, HnswParams { seed, ..HnswParams::default() });
        let g = index.knng(&vs, k, 32);
        prop_assert_eq!(g.len(), n);
        for (p, list) in g.iter().enumerate() {
            prop_assert!(list.len() <= k);
            prop_assert!(list.iter().all(|nb| nb.index as usize != p));
            for w in list.windows(2) {
                prop_assert!(w[0].key() <= w[1].key());
            }
        }
    }

    #[test]
    fn nn_descent_never_regresses_shape(n in 5usize..80, k in 1usize..8, seed in any::<u64>()) {
        let vs = DatasetSpec::UniformCube { n, dim: 4 }.generate(seed).vectors;
        let (lists, iters) = nn_descent(
            &vs,
            &NnDescentParams { k, max_iters: 4, seed, ..NnDescentParams::default() },
        );
        prop_assert!(iters <= 4);
        let kk = k.min(n - 1);
        for (p, list) in lists.iter().enumerate() {
            prop_assert_eq!(list.len(), kk);
            prop_assert!(list.iter().all(|nb| nb.index as usize != p));
        }
    }
}
