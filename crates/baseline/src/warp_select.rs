//! WarpSelect: FAISS's GPU k-selection strategy for exhaustive scans.
//!
//! Instead of offering every candidate to a warp-cooperative slot insert
//! (32 instructions each), every **lane** keeps a small thread-local queue
//! of the best candidates it has personally seen; a final warp-wide bitonic
//! merge produces the k best. This is the algorithm behind FAISS's fast
//! `GpuIndexFlat` scans, and makes the exact-brute-force baseline in the
//! cycle frontier as strong as the real system it stands in for.

use wknng_core::graph::{slots_to_lists, EMPTY_SLOT};
use wknng_data::{Neighbor, VectorSet};
use wknng_simt::primitives::bitonic_sort_u64;
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchReport, Mask, WARP_LANES};

/// Warps per block.
const WARPS_PER_BLOCK: usize = 4;

/// Exact K-NNG by exhaustive scan with WarpSelect k-selection: one warp per
/// query point, one candidate per lane per step, per-lane local queues and
/// one final merge.
pub fn brute_force_warpselect(
    vs: &VectorSet,
    k: usize,
    dev: &DeviceConfig,
) -> (Vec<Vec<Neighbor>>, LaunchReport) {
    let n = vs.len();
    let dim = vs.dim();
    let k = k.min(n.saturating_sub(1));
    let points = DeviceBuffer::from_slice(vs.as_flat());
    let slots = DeviceBuffer::filled(n * k.max(1), EMPTY_SLOT);
    // Per-lane queue depth: a full queue triggers a warp merge, so this
    // trades merge frequency against register pressure. Exactness comes from
    // the threshold protocol (nothing better than the current k-th best is
    // ever rejected), not from the depth.
    let t = k.div_ceil(WARP_LANES) + 1;

    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    let report = launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n || k == 0 {
                return;
            }
            // FAISS WarpSelect structure: per-lane thread queues of depth t,
            // a warp-wide sorted result of the k best so far, and a running
            // k-th-best threshold. Candidates not beating the threshold are
            // rejected with one compare; a full thread queue triggers a
            // warp-wide sort-merge that refreshes the threshold. Nothing
            // below the threshold is ever dropped, so the result is exact.
            let mut queues: Vec<Vec<u64>> =
                (0..WARP_LANES).map(|_| Vec::with_capacity(t)).collect();
            let mut warp_best: Vec<u64> = Vec::with_capacity(k);
            let mut threshold = EMPTY_SLOT;

            let mut base = 0usize;
            loop {
                let finished = base >= n;
                let mut need_merge = finished && queues.iter().any(|q| !q.is_empty());
                if !finished {
                    let mask = Mask::from_fn(|l| base + l < n && base + l != p);
                    if !mask.is_empty() {
                        // Lane distance loop: the query row broadcast-loads
                        // (all lanes read the same sector), candidate rows
                        // gather.
                        let mut acc = LaneVec::<f32>::zeroed();
                        for c in 0..dim {
                            let qi = LaneVec::splat(p * dim + c);
                            let a = w.ld_global(&points, &qi, mask);
                            let ci = w.math_idx(mask, |l| (base + l) * dim + c);
                            let b = w.ld_global(&points, &ci, mask);
                            acc = w.math_keep(mask, &acc, |l| {
                                let d = a.get(l) - b.get(l);
                                acc.get(l) + d * d
                            });
                        }
                        // Threshold compare + conditional queue push.
                        w.charge_alu(mask, 2);
                        for l in mask.iter() {
                            let cand = Neighbor::new((base + l) as u32, acc.get(l)).pack();
                            if cand < threshold {
                                queues[l].push(cand);
                                if queues[l].len() == t {
                                    need_merge = true;
                                }
                            }
                        }
                    }
                }
                if need_merge {
                    // Warp-wide sort-merge: bitonic rounds over the queue
                    // fronts plus a merge with the sorted warp list.
                    let rounds = queues.iter().map(|q| q.len()).max().unwrap_or(0);
                    for chunk in 0..rounds {
                        let mut lv = LaneVec::splat(EMPTY_SLOT);
                        for (l, queue) in queues.iter().enumerate() {
                            if let Some(&v) = queue.get(chunk) {
                                lv.set(l, v);
                            }
                        }
                        let _ = bitonic_sort_u64(w, &lv, Mask::FULL);
                    }
                    w.charge_alu(Mask::FULL, (k.div_ceil(WARP_LANES) * 10) as u64); // merge pass
                    for q in &mut queues {
                        warp_best.append(q);
                    }
                    warp_best.sort_unstable();
                    warp_best.truncate(k);
                    if warp_best.len() == k {
                        threshold = *warp_best.last().expect("k > 0");
                    }
                }
                if finished {
                    break;
                }
                base += WARP_LANES;
            }
            let all = warp_best;
            let width = all.len();
            let mut c = 0usize;
            while c < width {
                let step = (width - c).min(WARP_LANES);
                let mask = Mask::first(step);
                let idx = w.math_idx(mask, |l| p * k + c + l);
                let vals = LaneVec::from_fn(|l| if l < step { all[c + l] } else { EMPTY_SLOT });
                w.st_global(&slots, &idx, &vals, mask);
                c += WARP_LANES;
            }
        });
    });
    (slots_to_lists(&slots.to_vec(), n, k.max(1)), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_device;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    #[test]
    fn warpselect_is_exact() {
        for (n, dim, k) in [(50usize, 7usize, 5usize), (80, 33, 10), (40, 4, 35)] {
            let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 4, spread: 0.3 }
                .generate((n + dim) as u64)
                .vectors;
            let dev = DeviceConfig::test_tiny();
            let (got, _) = brute_force_warpselect(&vs, k, &dev);
            let want = exact_knn(&vs, k, Metric::SquaredL2);
            for (p, (g, t)) in got.iter().zip(&want).enumerate() {
                let gi: Vec<u32> = g.iter().map(|nb| nb.index).collect();
                let ti: Vec<u32> = t.iter().map(|nb| nb.index).collect();
                assert_eq!(gi, ti, "n={n} dim={dim} k={k} point {p}");
            }
        }
    }

    #[test]
    fn warpselect_beats_slot_insert_at_low_dim() {
        let vs = DatasetSpec::UniformCube { n: 128, dim: 8 }.generate(3).vectors;
        let dev = DeviceConfig::test_tiny();
        let (_, ws) = brute_force_warpselect(&vs, 8, &dev);
        let (_, si) = brute_force_device(&vs, 8, &dev);
        assert!(
            ws.cycles * 2.0 < si.cycles,
            "warp-select {} vs slot-insert {} cycles",
            ws.cycles,
            si.cycles
        );
    }

    #[test]
    fn degenerate_k_zero_or_tiny_n() {
        let vs = DatasetSpec::UniformCube { n: 2, dim: 3 }.generate(1).vectors;
        let dev = DeviceConfig::test_tiny();
        let (lists, _) = brute_force_warpselect(&vs, 5, &dev);
        assert_eq!(lists[0].len(), 1);
        assert_eq!(lists[0][0].index, 1);
    }
}
