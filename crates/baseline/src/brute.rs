//! Exact brute-force K-NNG on the simulated device (FAISS-Flat stand-in).

use wknng_core::kernels::distance::warp_sq_l2;
use wknng_core::kernels::insert::warp_insert_exclusive;
use wknng_core::kernels::DeviceState;
use wknng_data::{Neighbor, VectorSet};
use wknng_simt::{launch, DeviceConfig, LaunchReport};

/// Warps per block.
const WARPS_PER_BLOCK: usize = 4;

/// Exact K-NNG by exhaustive scan: one warp per point, every other point is
/// a candidate. This is the `GpuIndexFlat` reference both for correctness
/// (it must equal `exact_knn`) and for the cost frontier (approximate
/// methods must beat it in simulated cycles at high recall).
pub fn brute_force_device(
    vs: &VectorSet,
    k: usize,
    dev: &DeviceConfig,
) -> (Vec<Vec<Neighbor>>, LaunchReport) {
    let state = DeviceState::upload(vs, k);
    let n = state.n;
    let dim = state.dim;
    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    let report = launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n {
                return;
            }
            for q in 0..n {
                if q == p {
                    continue;
                }
                let d = warp_sq_l2(w, &state.points, dim, p, q);
                warp_insert_exclusive(w, &state.slots, p, k, Neighbor::new(q as u32, d).pack());
            }
        });
    });
    (state.download(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    #[test]
    fn matches_exact_knn() {
        let vs = DatasetSpec::GaussianClusters { n: 40, dim: 6, clusters: 4, spread: 0.3 }
            .generate(13)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let (got, report) = brute_force_device(&vs, 5, &dev);
        let want = exact_knn(&vs, 5, Metric::SquaredL2);
        for (g, t) in got.iter().zip(&want) {
            let gi: Vec<u32> = g.iter().map(|nb| nb.index).collect();
            let ti: Vec<u32> = t.iter().map(|nb| nb.index).collect();
            assert_eq!(gi, ti);
        }
        assert!(report.cycles > 0.0);
        // n^2 pair scans dominate the traffic.
        assert!(report.stats.global_load_transactions as usize >= 40 * 39);
    }
}
