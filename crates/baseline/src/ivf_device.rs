//! IVF-Flat search on the simulated device — the "FAISS on the same GPU"
//! comparator for the cycle-level frontier (experiment E3).

use wknng_core::kernels::distance::warp_sq_l2;
use wknng_core::kernels::insert::warp_insert_exclusive;
use wknng_core::kernels::DeviceState;
use wknng_data::{Neighbor, VectorSet};
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchReport, Mask};

use crate::ivf::IvfFlat;

/// Warps per block.
const WARPS_PER_BLOCK: usize = 4;

/// All-points K-NNG from a pre-built IVF-Flat index, executed as a
/// warp-centric device kernel: one warp per query point; the warp ranks the
/// centroids, then exhaustively scans the `nprobe` nearest inverted lists.
///
/// Quantizer training is host-side (FAISS also trains its coarse quantizer
/// once, off the critical path of each query batch); the returned report
/// covers the search kernel only, so add a training cost separately when
/// comparing end-to-end construction times.
pub fn ivf_knng_device(
    vs: &VectorSet,
    ivf: &IvfFlat,
    k: usize,
    nprobe: usize,
    dev: &DeviceConfig,
) -> (Vec<Vec<Neighbor>>, LaunchReport) {
    let state = DeviceState::upload(vs, k);
    let n = state.n;
    let dim = state.dim;
    let nlist = ivf.nlist();
    let nprobe = nprobe.clamp(1, nlist);

    let centroids = DeviceBuffer::from_slice(ivf.quantizer().centroids.as_slice());
    let mut members = Vec::with_capacity(n);
    let mut offsets = Vec::with_capacity(nlist + 1);
    offsets.push(0u32);
    for c in 0..nlist {
        members.extend_from_slice(ivf.list(c));
        offsets.push(members.len() as u32);
    }
    let d_members = DeviceBuffer::from_slice(&members);
    let d_offsets = DeviceBuffer::from_slice(&offsets);

    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    let report = launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n {
                return;
            }
            // Rank all centroids (distance per centroid, warp-cooperative).
            let mut cd: Vec<(f32, usize)> = Vec::with_capacity(nlist);
            for c in 0..nlist {
                let d = warp_sq_l2_centroid(w, &state.points, &centroids, dim, p, c);
                cd.push((d, c));
            }
            // Select the nprobe nearest by repeated min-scan; charge one
            // compare instruction per centroid per pass (the selection loop
            // a real kernel runs in registers).
            for probe in 0..nprobe {
                w.charge_alu(Mask::FULL, ((nlist - probe) / 32).max(1) as u64);
                let (best_idx, _) = cd[probe..]
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                    .expect("nonempty");
                cd.swap(probe, probe + best_idx);
            }
            // Scan the probed lists.
            let one = Mask::first(1);
            for &(_, c) in &cd[..nprobe] {
                let start = w.ld_global(&d_offsets, &LaneVec::splat(c), one).get(0) as usize;
                let end = w.ld_global(&d_offsets, &LaneVec::splat(c + 1), one).get(0) as usize;
                for pos in start..end {
                    let q = w.ld_global(&d_members, &LaneVec::splat(pos), one).get(0) as usize;
                    if q == p {
                        continue;
                    }
                    let d = warp_sq_l2(w, &state.points, dim, p, q);
                    warp_insert_exclusive(w, &state.slots, p, k, Neighbor::new(q as u32, d).pack());
                }
            }
        });
    });
    (state.download(), report)
}

/// Distance from point `p` to centroid `c` (same strided-lane pattern as
/// [`warp_sq_l2`], but mixing the point buffer with the centroid buffer).
fn warp_sq_l2_centroid(
    w: &mut wknng_simt::WarpCtx,
    points: &DeviceBuffer<f32>,
    centroids: &DeviceBuffer<f32>,
    dim: usize,
    p: usize,
    c: usize,
) -> f32 {
    use wknng_simt::primitives::reduce_sum_f32;
    use wknng_simt::WARP_LANES;
    let mut acc = LaneVec::<f32>::zeroed();
    let mut off = 0usize;
    while off < dim {
        let width = (dim - off).min(WARP_LANES);
        let mask = Mask::first(width);
        let pi = w.math_idx(mask, |l| p * dim + off + l);
        let a = w.ld_global(points, &pi, mask);
        let ci = w.math_idx(mask, |l| c * dim + off + l);
        let b = w.ld_global(centroids, &ci, mask);
        acc = w.math_keep(mask, &acc, |l| {
            let d = a.get(l) - b.get(l);
            acc.get(l) + d * d
        });
        off += WARP_LANES;
    }
    reduce_sum_f32(w, &acc, Mask::FULL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ivf::IvfParams;
    use wknng_core::recall;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    #[test]
    fn device_ivf_matches_native_ivf() {
        let vs = DatasetSpec::GaussianClusters { n: 120, dim: 10, clusters: 6, spread: 0.25 }
            .generate(17)
            .vectors;
        let ivf = IvfFlat::build(&vs, IvfParams { nlist: 8, ..IvfParams::default() });
        let dev = DeviceConfig::test_tiny();
        for nprobe in [1usize, 2, 8] {
            let native = ivf.knng(&vs, 4, nprobe);
            let (device, report) = ivf_knng_device(&vs, &ivf, 4, nprobe, &dev);
            let ni: Vec<Vec<u32>> =
                native.iter().map(|l| l.iter().map(|n| n.index).collect()).collect();
            let di: Vec<Vec<u32>> =
                device.iter().map(|l| l.iter().map(|n| n.index).collect()).collect();
            assert_eq!(ni, di, "nprobe {nprobe}");
            assert!(report.cycles > 0.0);
        }
    }

    #[test]
    fn full_probe_device_is_exact() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 6 }.generate(18).vectors;
        let ivf = IvfFlat::build(&vs, IvfParams { nlist: 5, ..IvfParams::default() });
        let dev = DeviceConfig::test_tiny();
        let (lists, _) = ivf_knng_device(&vs, &ivf, 3, 5, &dev);
        let truth = exact_knn(&vs, 3, Metric::SquaredL2);
        assert_eq!(recall(&lists, &truth), 1.0);
    }

    #[test]
    fn more_probes_cost_more_cycles() {
        let vs = DatasetSpec::UniformCube { n: 80, dim: 12 }.generate(19).vectors;
        let ivf = IvfFlat::build(&vs, IvfParams { nlist: 16, ..IvfParams::default() });
        let dev = DeviceConfig::test_tiny();
        let (_, r1) = ivf_knng_device(&vs, &ivf, 4, 1, &dev);
        let (_, r8) = ivf_knng_device(&vs, &ivf, 4, 8, &dev);
        assert!(r8.cycles > r1.cycles);
    }
}
