//! IVF-Flat — the FAISS configuration the paper compares against.
//!
//! An inverted-file index over a k-means coarse quantizer: each point is
//! stored in the list of its nearest centroid; a query scans the `nprobe`
//! nearest lists exhaustively. `nprobe` is the accuracy/time dial, exactly
//! the mechanism behind FAISS's approximate K-NNG construction numbers.

use rayon::prelude::*;

use wknng_data::{sq_l2, Neighbor, VectorSet};

use crate::kmeans::{train_kmeans, Kmeans};
use wknng_core::KnnList;

/// A built IVF-Flat index.
pub struct IvfFlat {
    quantizer: Kmeans,
    /// Inverted lists: point ids per centroid.
    lists: Vec<Vec<u32>>,
}

/// Parameters of the IVF baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IvfParams {
    /// Number of inverted lists (centroids).
    pub nlist: usize,
    /// Quantizer training iterations.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IvfParams {
    fn default() -> Self {
        IvfParams { nlist: 64, train_iters: 10, seed: 0xFA155 }
    }
}

impl IvfFlat {
    /// Train the quantizer on `vs` and fill the inverted lists.
    pub fn build(vs: &VectorSet, params: IvfParams) -> Self {
        let quantizer = train_kmeans(vs, params.nlist, params.train_iters, params.seed);
        IvfFlat::from_quantizer(quantizer)
    }

    /// Build the inverted lists from an already-trained quantizer (e.g. one
    /// trained on the simulated device).
    pub fn from_quantizer(quantizer: Kmeans) -> Self {
        let mut lists = vec![Vec::new(); quantizer.nlist];
        for (p, &c) in quantizer.assignment.iter().enumerate() {
            lists[c as usize].push(p as u32);
        }
        IvfFlat { quantizer, lists }
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The trained quantizer.
    pub fn quantizer(&self) -> &Kmeans {
        &self.quantizer
    }

    /// Inverted list of centroid `c`.
    pub fn list(&self, c: usize) -> &[u32] {
        &self.lists[c]
    }

    /// The `nprobe` centroids nearest to `row`, best first.
    pub fn probe_order(&self, row: &[f32], nprobe: usize) -> Vec<usize> {
        let mut by_dist: Vec<(f32, usize)> = (0..self.quantizer.nlist)
            .map(|c| (sq_l2(row, self.quantizer.centroid(c)), c))
            .collect();
        by_dist.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        by_dist.into_iter().take(nprobe.max(1)).map(|(_, c)| c).collect()
    }

    /// K nearest neighbors of `row` among the probed lists (`exclude` drops
    /// a self-match when querying with an indexed point).
    pub fn search(
        &self,
        vs: &VectorSet,
        row: &[f32],
        k: usize,
        nprobe: usize,
        exclude: Option<u32>,
    ) -> Vec<Neighbor> {
        let mut best = KnnList::new(k);
        for c in self.probe_order(row, nprobe) {
            for &p in &self.lists[c] {
                if Some(p) == exclude {
                    continue;
                }
                best.insert(Neighbor::new(p, sq_l2(row, vs.row(p as usize))));
            }
        }
        best.into_vec()
    }

    /// All-points K-NNG by querying the index with every point — how FAISS
    /// is used to construct an approximate K-NNG.
    pub fn knng(&self, vs: &VectorSet, k: usize, nprobe: usize) -> Vec<Vec<Neighbor>> {
        (0..vs.len())
            .into_par_iter()
            .map(|p| self.search(vs, vs.row(p), k, nprobe, Some(p as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_core::recall;
    use wknng_data::{exact_knn, DatasetSpec, Metric};

    fn dataset() -> VectorSet {
        DatasetSpec::GaussianClusters { n: 200, dim: 8, clusters: 8, spread: 0.2 }
            .generate(9)
            .vectors
    }

    #[test]
    fn full_probe_is_exact() {
        let vs = dataset();
        let ivf = IvfFlat::build(&vs, IvfParams { nlist: 10, ..IvfParams::default() });
        let got = ivf.knng(&vs, 5, ivf.nlist());
        let truth = exact_knn(&vs, 5, Metric::SquaredL2);
        assert_eq!(recall(&got, &truth), 1.0);
    }

    #[test]
    fn nprobe_trades_recall() {
        let vs = dataset();
        let ivf = IvfFlat::build(&vs, IvfParams { nlist: 16, ..IvfParams::default() });
        let truth = exact_knn(&vs, 5, Metric::SquaredL2);
        let r1 = recall(&ivf.knng(&vs, 5, 1), &truth);
        let r4 = recall(&ivf.knng(&vs, 5, 4), &truth);
        let r16 = recall(&ivf.knng(&vs, 5, 16), &truth);
        assert!(r1 <= r4 + 1e-9, "{r1} vs {r4}");
        assert!(r4 <= r16 + 1e-9);
        assert_eq!(r16, 1.0);
        assert!(r1 < 1.0, "nprobe=1 on 16 lists should miss something");
    }

    #[test]
    fn inverted_lists_partition_points() {
        let vs = dataset();
        let ivf = IvfFlat::build(&vs, IvfParams { nlist: 12, ..IvfParams::default() });
        let total: usize = (0..ivf.nlist()).map(|c| ivf.list(c).len()).sum();
        assert_eq!(total, vs.len());
    }

    #[test]
    fn search_excludes_self() {
        let vs = dataset();
        let ivf = IvfFlat::build(&vs, IvfParams::default());
        let res = ivf.search(&vs, vs.row(3), 4, ivf.nlist(), Some(3));
        assert!(res.iter().all(|nb| nb.index != 3));
        // Without exclusion the self-match (distance 0) comes first.
        let res = ivf.search(&vs, vs.row(3), 4, ivf.nlist(), None);
        assert_eq!(res[0].index, 3);
        assert_eq!(res[0].dist, 0.0);
    }
}
