//! NN-descent (Dong et al.) — the classic CPU baseline for approximate
//! K-NNG construction, included to position w-KNNG against the
//! non-forest family of algorithms.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wknng_core::KnnList;
use wknng_data::{Metric, Neighbor, VectorSet};

/// Parameters of an NN-descent run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnDescentParams {
    /// Neighbors per point.
    pub k: usize,
    /// Maximum local-join iterations.
    pub max_iters: usize,
    /// Early-exit threshold: stop when fewer than `delta · n · k` list
    /// updates happen in an iteration.
    pub delta: f64,
    /// Distance metric.
    pub metric: Metric,
    /// RNG seed for the random initial graph.
    pub seed: u64,
}

impl Default for NnDescentParams {
    fn default() -> Self {
        NnDescentParams { k: 16, max_iters: 10, delta: 0.001, metric: Metric::SquaredL2, seed: 7 }
    }
}

/// Build an approximate K-NNG with NN-descent local joins.
///
/// Returns the graph and the number of iterations executed. Deterministic in
/// `params.seed`.
pub fn nn_descent(vs: &VectorSet, params: &NnDescentParams) -> (Vec<Vec<Neighbor>>, usize) {
    let n = vs.len();
    let k = params.k.min(n.saturating_sub(1));
    if n == 0 || k == 0 {
        return (vec![Vec::new(); n], 0);
    }
    let mut rng = SmallRng::seed_from_u64(params.seed ^ 0x6A09_E667_F3BC_C909);

    // Random initial graph.
    let mut lists: Vec<KnnList> = (0..n).map(|_| KnnList::new(k)).collect();
    let mut flags: Vec<Vec<u32>> = vec![Vec::new(); n]; // "new" entries per point
    for p in 0..n {
        while lists[p].len() < k {
            let q = rng.gen_range(0..n);
            if q != p {
                let d = params.metric.eval(vs.row(p), vs.row(q));
                if lists[p].insert(Neighbor::new(q as u32, d)) {
                    flags[p].push(q as u32);
                }
            }
        }
    }

    let mut iters = 0usize;
    for _ in 0..params.max_iters {
        iters += 1;
        // Forward and reverse candidate sets, split new/old.
        let mut new_c: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut old_c: Vec<Vec<u32>> = vec![Vec::new(); n];
        for p in 0..n {
            for nb in lists[p].as_slice() {
                let q = nb.index;
                if flags[p].contains(&q) {
                    new_c[p].push(q);
                    new_c[q as usize].push(p as u32); // reverse new
                } else {
                    old_c[p].push(q);
                    old_c[q as usize].push(p as u32); // reverse old
                }
            }
        }
        for p in 0..n {
            new_c[p].sort_unstable();
            new_c[p].dedup();
            old_c[p].sort_unstable();
            old_c[p].dedup();
        }
        flags.iter_mut().for_each(Vec::clear);

        // Local joins: new × (new ∪ old).
        let mut updates = 0usize;
        for p in 0..n {
            for (ai, &a) in new_c[p].iter().enumerate() {
                for &b in new_c[p][ai + 1..].iter().chain(old_c[p].iter()) {
                    if a == b {
                        continue;
                    }
                    let d = params.metric.eval(vs.row(a as usize), vs.row(b as usize));
                    if lists[a as usize].insert(Neighbor::new(b, d)) {
                        flags[a as usize].push(b);
                        updates += 1;
                    }
                    if lists[b as usize].insert(Neighbor::new(a, d)) {
                        flags[b as usize].push(a);
                        updates += 1;
                    }
                }
            }
        }
        if (updates as f64) < params.delta * (n * k) as f64 {
            break;
        }
    }

    (lists.into_iter().map(KnnList::into_vec).collect(), iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_core::recall;
    use wknng_data::{exact_knn, DatasetSpec};

    #[test]
    fn converges_to_high_recall_on_clusters() {
        let vs = DatasetSpec::GaussianClusters { n: 300, dim: 10, clusters: 6, spread: 0.25 }
            .generate(21)
            .vectors;
        let params = NnDescentParams { k: 8, ..NnDescentParams::default() };
        let (lists, iters) = nn_descent(&vs, &params);
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let r = recall(&lists, &truth);
        assert!(r > 0.85, "nn-descent recall {r:.3} after {iters} iters");
        assert!(iters >= 2);
    }

    #[test]
    fn deterministic() {
        let vs = DatasetSpec::UniformCube { n: 80, dim: 5 }.generate(22).vectors;
        let params = NnDescentParams { k: 5, ..NnDescentParams::default() };
        let (a, _) = nn_descent(&vs, &params);
        let (b, _) = nn_descent(&vs, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn graph_shape_invariants() {
        let vs = DatasetSpec::UniformCube { n: 50, dim: 4 }.generate(23).vectors;
        let params = NnDescentParams { k: 6, max_iters: 3, ..NnDescentParams::default() };
        let (lists, _) = nn_descent(&vs, &params);
        for (p, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 6);
            assert!(list.iter().all(|nb| nb.index as usize != p));
            for w in list.windows(2) {
                assert!(w[0].key() < w[1].key());
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let vs = DatasetSpec::UniformCube { n: 1, dim: 2 }.generate(24).vectors;
        let (lists, _) = nn_descent(&vs, &NnDescentParams { k: 4, ..NnDescentParams::default() });
        assert_eq!(lists.len(), 1);
        assert!(lists[0].is_empty());
    }
}
