//! K-means on the simulated device: the assignment passes (the O(n·nlist·d)
//! part of Lloyd iterations) run as warp-centric kernels, so the IVF-Flat
//! baseline's *training* cost appears in device cycles alongside its search
//! cost. Centroid updates (O(n·d) averaging) stay host-side, as they do in
//! FAISS's GPU k-means too.

use wknng_data::VectorSet;
use wknng_simt::primitives::reduce_sum_f32;
use wknng_simt::{launch, DeviceBuffer, DeviceConfig, LaneVec, LaunchReport, Mask, WARP_LANES};

use crate::kmeans::Kmeans;

/// Warps per block.
const WARPS_PER_BLOCK: usize = 4;

/// One assignment pass on the device: for every point, the nearest centroid.
pub fn assign_device(
    points: &DeviceBuffer<f32>,
    n: usize,
    dim: usize,
    centroids: &[f32],
    dev: &DeviceConfig,
) -> (Vec<u32>, LaunchReport) {
    let nlist = centroids.len() / dim.max(1);
    let d_centroids = DeviceBuffer::from_slice(centroids);
    let d_assign = DeviceBuffer::<u32>::zeroed(n);
    let blocks = n.div_ceil(WARPS_PER_BLOCK);
    let report = launch(dev, blocks, WARPS_PER_BLOCK, |blk| {
        blk.each_warp(|w| {
            let p = w.global_warp;
            if p >= n {
                return;
            }
            let mut best = (f32::INFINITY, 0u32);
            for c in 0..nlist {
                // Warp-cooperative distance to centroid c.
                let mut acc = LaneVec::<f32>::zeroed();
                let mut off = 0usize;
                while off < dim {
                    let width = (dim - off).min(WARP_LANES);
                    let mask = Mask::first(width);
                    let pi = w.math_idx(mask, |l| p * dim + off + l);
                    let a = w.ld_global(points, &pi, mask);
                    let ci = w.math_idx(mask, |l| c * dim + off + l);
                    let b = w.ld_global(&d_centroids, &ci, mask);
                    acc = w.math_keep(mask, &acc, |l| {
                        let d = a.get(l) - b.get(l);
                        acc.get(l) + d * d
                    });
                    off += WARP_LANES;
                }
                let d = reduce_sum_f32(w, &acc, Mask::FULL);
                w.charge_alu(Mask::first(1), 1); // compare-and-keep
                if d < best.0 {
                    best = (d, c as u32);
                }
            }
            w.st_global(&d_assign, &LaneVec::splat(p), &LaneVec::splat(best.1), Mask::first(1));
        });
    });
    (d_assign.to_vec(), report)
}

/// Train k-means with device-side assignment passes. Same structure as
/// [`crate::kmeans::train_kmeans`] (distinct random seeding, empty-cluster
/// reseeding, change-count convergence); returns the model and the summed
/// launch report of the assignment kernels.
pub fn train_kmeans_device(
    vs: &VectorSet,
    nlist: usize,
    max_iters: usize,
    seed: u64,
    dev: &DeviceConfig,
) -> (Kmeans, LaunchReport) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let n = vs.len();
    let dim = vs.dim();
    let nlist = nlist.clamp(1, n.max(1));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D);

    let mut picks: Vec<usize> = Vec::with_capacity(nlist);
    while picks.len() < nlist {
        let c = rng.gen_range(0..n);
        if !picks.contains(&c) {
            picks.push(c);
        }
    }
    let mut centroids: Vec<f32> = picks.iter().flat_map(|&p| vs.row(p).iter().copied()).collect();
    let mut assignment = vec![0u32; n];
    let mut total = LaunchReport::default();
    let points = DeviceBuffer::from_slice(vs.as_flat());
    let mut iterations = 0usize;

    for _ in 0..max_iters {
        iterations += 1;
        let (next, report) = assign_device(&points, n, dim, &centroids, dev);
        total += report;
        let changed = next.iter().zip(&assignment).filter(|(a, b)| a != b).count();
        assignment = next;

        let mut sums = vec![0.0f64; nlist * dim];
        let mut counts = vec![0usize; nlist];
        for (p, &c) in assignment.iter().enumerate() {
            counts[c as usize] += 1;
            for (j, &v) in vs.row(p).iter().enumerate() {
                sums[c as usize * dim + j] += v as f64;
            }
        }
        for c in 0..nlist {
            if counts[c] == 0 {
                let p = rng.gen_range(0..n);
                centroids[c * dim..(c + 1) * dim].copy_from_slice(vs.row(p));
            } else {
                for j in 0..dim {
                    centroids[c * dim + j] = (sums[c * dim + j] / counts[c] as f64) as f32;
                }
            }
        }
        if changed == 0 {
            break;
        }
    }

    (Kmeans { centroids, dim, nlist, assignment, iterations }, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::train_kmeans;
    use wknng_data::DatasetSpec;

    #[test]
    fn device_assignment_matches_host() {
        let vs = DatasetSpec::GaussianClusters { n: 120, dim: 10, clusters: 5, spread: 0.2 }
            .generate(77)
            .vectors;
        let km = train_kmeans(&vs, 5, 15, 9);
        let dev = DeviceConfig::test_tiny();
        let points = DeviceBuffer::from_slice(vs.as_flat());
        let (assign, report) = assign_device(&points, vs.len(), vs.dim(), &km.centroids, &dev);
        // The converged model: host assignments are the device's nearest
        // centroids too (ties are vanishingly rare on gaussian data).
        assert_eq!(assign, km.assignment);
        assert!(report.cycles > 0.0);
    }

    #[test]
    fn device_training_converges_like_host() {
        let vs = DatasetSpec::GaussianClusters { n: 150, dim: 6, clusters: 3, spread: 0.05 }
            .generate(78)
            .vectors;
        let dev = DeviceConfig::test_tiny();
        let (km, report) = train_kmeans_device(&vs, 3, 25, 5, &dev);
        // Well-separated blobs: the partition must match the generator's
        // round-robin cluster assignment.
        for p in 0..vs.len() {
            assert_eq!(km.assignment[p], km.assignment[p % 3], "point {p} split from its blob");
        }
        assert!(report.stats.launches as usize >= km.iterations);
        assert!(report.cycles > 0.0);
    }
}
