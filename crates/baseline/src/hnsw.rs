//! HNSW (Hierarchical Navigable Small World, Malkov & Yashunin) — the
//! graph-index family (HNSW/GGNN) that competes with RP-forest methods for
//! K-NNG construction. Points are inserted one at a time into a hierarchy of
//! navigable layers; an all-points K-NNG falls out of querying the finished
//! index with every point.
//!
//! This is a faithful but deliberately plain implementation: exponential
//! level assignment, beam search per layer, closest-`M` neighbor selection
//! (the simple selection rule, not the pruning heuristic), bidirectional
//! edges with degree capping. Insertion is inherently sequential; queries
//! are parallel.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use wknng_core::KnnList;
use wknng_data::{Metric, Neighbor, VectorSet};

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswParams {
    /// Max degree on layers above 0 (`M`); layer 0 allows `2·M`.
    pub m: usize,
    /// Beam width during construction (`efConstruction`).
    pub ef_construction: usize,
    /// Distance metric.
    pub metric: Metric,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams { m: 12, ef_construction: 64, metric: Metric::SquaredL2, seed: 0x4A57 }
    }
}

/// A built HNSW index.
pub struct Hnsw {
    /// `layers[l][p]` = adjacency of point `p` on layer `l` (empty when `p`
    /// does not reach layer `l`).
    layers: Vec<Vec<Vec<u32>>>,
    /// Top layer of each point.
    levels: Vec<usize>,
    /// Global entry point (highest-level point).
    entry: u32,
    params: HnswParams,
}

impl Hnsw {
    /// Number of layers in the hierarchy.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Top layer assigned to point `p`.
    pub fn level(&self, p: usize) -> usize {
        self.levels[p]
    }

    /// Construction parameters.
    pub fn params(&self) -> HnswParams {
        self.params
    }

    /// Build an index over `vs`. Deterministic in `params.seed`.
    pub fn build(vs: &VectorSet, params: HnswParams) -> Self {
        let n = vs.len();
        let m = params.m.max(2);
        let ml = 1.0 / (m as f64).ln();
        let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xB5AD_4ECE_DA1C_E2A9);
        let levels: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                ((-u.ln() * ml) as usize).min(16)
            })
            .collect();
        let max_level = levels.iter().copied().max().unwrap_or(0);
        let mut index = Hnsw {
            layers: (0..=max_level).map(|_| vec![Vec::new(); n]).collect(),
            levels,
            entry: 0,
            params: HnswParams { m, ..params },
        };
        if n == 0 {
            return index;
        }
        // Insert points in id order; the first point seeds the hierarchy.
        let mut entry = 0u32;
        let mut entry_level = index.levels[0];
        for p in 1..n {
            index.insert(vs, p, entry, entry_level);
            if index.levels[p] > entry_level {
                entry = p as u32;
                entry_level = index.levels[p];
            }
        }
        index.entry = entry;
        index
    }

    fn dist(&self, vs: &VectorSet, a: &[f32], p: u32) -> f32 {
        self.params.metric.eval(a, vs.row(p as usize))
    }

    /// Beam search within one layer, starting from `entries`.
    fn search_layer(
        &self,
        vs: &VectorSet,
        query: &[f32],
        entries: &[Neighbor],
        ef: usize,
        layer: usize,
    ) -> Vec<Neighbor> {
        let mut visited = std::collections::HashSet::new();
        let mut best = KnnList::new(ef.max(1));
        let mut frontier: Vec<Neighbor> = Vec::new();
        for &e in entries {
            if visited.insert(e.index) {
                best.insert(e);
                frontier.push(e);
            }
        }
        while let Some(pos) = frontier
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.key().partial_cmp(&b.key()).expect("finite"))
            .map(|(i, _)| i)
        {
            let cur = frontier.swap_remove(pos);
            if best.len() == best.capacity() {
                if let Some(worst) = best.worst() {
                    if cur.key() > worst.key() {
                        break;
                    }
                }
            }
            for &nb in &self.layers[layer][cur.index as usize] {
                if visited.insert(nb) {
                    let cand = Neighbor::new(nb, self.dist(vs, query, nb));
                    if best.insert(cand) {
                        frontier.push(cand);
                    }
                }
            }
        }
        best.into_vec()
    }

    /// Insert point `p` given the current global entry.
    fn insert(&mut self, vs: &VectorSet, p: usize, entry: u32, entry_level: usize) {
        let level = self.levels[p];
        let row = vs.row(p).to_vec();
        let mut ep = vec![Neighbor::new(entry, self.dist(vs, &row, entry))];
        // Greedy descent through layers above the insertion level.
        let mut l = entry_level;
        while l > level {
            ep = self.search_layer(vs, &row, &ep, 1, l);
            l -= 1;
        }
        // Connect on layers min(entry_level, level)..0.
        let m = self.params.m;
        let mut l = level.min(entry_level);
        loop {
            let cands = self.search_layer(vs, &row, &ep, self.params.ef_construction, l);
            let cap = if l == 0 { 2 * m } else { m };
            let chosen: Vec<Neighbor> = cands.iter().take(cap).copied().collect();
            for nb in &chosen {
                self.layers[l][p].push(nb.index);
                self.layers[l][nb.index as usize].push(p as u32);
                // Cap the neighbor's degree, keeping its closest links.
                if self.layers[l][nb.index as usize].len() > cap {
                    let base = vs.row(nb.index as usize);
                    let mut ranked: Vec<Neighbor> = self.layers[l][nb.index as usize]
                        .iter()
                        .map(|&q| {
                            Neighbor::new(q, self.params.metric.eval(base, vs.row(q as usize)))
                        })
                        .collect();
                    wknng_data::sort_neighbors(&mut ranked);
                    ranked.truncate(cap);
                    self.layers[l][nb.index as usize] = ranked.iter().map(|e| e.index).collect();
                }
            }
            ep = cands;
            if l == 0 {
                break;
            }
            l -= 1;
        }
    }

    /// K nearest indexed points to `query` with beam width `ef`.
    pub fn search(&self, vs: &VectorSet, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        if vs.is_empty() {
            return Vec::new();
        }
        let mut ep = vec![Neighbor::new(self.entry, self.dist(vs, query, self.entry))];
        for l in (1..self.num_layers()).rev() {
            ep = self.search_layer(vs, query, &ep, 1, l);
        }
        let mut res = self.search_layer(vs, query, &ep, ef.max(k), 0);
        res.truncate(k);
        res
    }

    /// All-points K-NNG by querying the index with every point (self
    /// excluded) — how a search index is used for K-NNG construction.
    pub fn knng(&self, vs: &VectorSet, k: usize, ef: usize) -> Vec<Vec<Neighbor>> {
        (0..vs.len())
            .into_par_iter()
            .map(|p| {
                let mut res = self.search(vs, vs.row(p), k + 1, ef.max(k + 1));
                res.retain(|nb| nb.index as usize != p);
                res.truncate(k);
                res
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_core::recall;
    use wknng_data::{exact_knn, DatasetSpec};

    fn dataset(n: usize) -> VectorSet {
        DatasetSpec::Manifold { n, ambient_dim: 32, intrinsic_dim: 4 }.generate(66).vectors
    }

    #[test]
    fn hnsw_reaches_high_recall() {
        let vs = dataset(400);
        let index = Hnsw::build(&vs, HnswParams::default());
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let got = index.knng(&vs, 8, 64);
        let r = recall(&got, &truth);
        assert!(r > 0.85, "hnsw recall {r:.3}");
    }

    #[test]
    fn deterministic_build_and_search() {
        let vs = dataset(150);
        let a = Hnsw::build(&vs, HnswParams::default());
        let b = Hnsw::build(&vs, HnswParams::default());
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.knng(&vs, 5, 32), b.knng(&vs, 5, 32));
    }

    #[test]
    fn hierarchy_shape_is_sane() {
        let vs = dataset(500);
        let index = Hnsw::build(&vs, HnswParams::default());
        assert!(index.num_layers() >= 1);
        // Level population decays roughly geometrically.
        let at_or_above = |l: usize| (0..500).filter(|&p| index.level(p) >= l).count();
        assert_eq!(at_or_above(0), 500);
        if index.num_layers() > 1 {
            assert!(at_or_above(1) < 200, "layer 1 holds {} points", at_or_above(1));
        }
        // Degrees respect the caps.
        let m = index.params().m;
        for p in 0..500 {
            assert!(index.layers[0][p].len() <= 2 * m);
            for l in 1..index.num_layers() {
                assert!(index.layers[l][p].len() <= m);
            }
        }
    }

    #[test]
    fn search_finds_indexed_point() {
        let vs = dataset(200);
        let index = Hnsw::build(&vs, HnswParams::default());
        for p in [0usize, 57, 199] {
            let res = index.search(&vs, vs.row(p), 3, 32);
            assert_eq!(res[0].index as usize, p, "query with point {p}");
            assert_eq!(res[0].dist, 0.0);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = VectorSet::new(vec![], 4).unwrap();
        let index = Hnsw::build(&empty, HnswParams::default());
        assert!(index.knng(&empty, 3, 16).is_empty());
        let two = DatasetSpec::UniformCube { n: 2, dim: 3 }.generate(1).vectors;
        let index = Hnsw::build(&two, HnswParams::default());
        let g = index.knng(&two, 1, 8);
        assert_eq!(g[0][0].index, 1);
        assert_eq!(g[1][0].index, 0);
    }
}
