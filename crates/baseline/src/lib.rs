//! # wknng-baseline — the comparison methods of the evaluation
//!
//! From-scratch implementations of every system w-KNNG is compared against:
//!
//! * [`brute_force_device`] — exact exhaustive K-NNG on the simulated
//!   device (FAISS `GpuIndexFlat` stand-in);
//! * [`IvfFlat`] — an inverted-file index over a k-means coarse quantizer
//!   with an `nprobe` accuracy dial (FAISS `GpuIndexIVFFlat` stand-in, the
//!   configuration behind the paper's headline comparison), runnable both
//!   natively ([`IvfFlat::knng`]) and as a device kernel
//!   ([`ivf_knng_device`]);
//! * [`nn_descent`] — the classic local-join algorithm, positioning w-KNNG
//!   against the non-forest family;
//! * [`Hnsw`] — a hierarchical navigable-small-world index (the HNSW/GGNN
//!   graph-index family), used as an additional K-NNG construction
//!   competitor;
//! * [`train_kmeans`] — the Lloyd quantizer substrate.
//!
//! ```
//! use wknng_baseline::{IvfFlat, IvfParams};
//! use wknng_data::DatasetSpec;
//!
//! let vs = DatasetSpec::sift_like(300).generate(5).vectors;
//! let ivf = IvfFlat::build(&vs, IvfParams { nlist: 16, ..IvfParams::default() });
//! let knng = ivf.knng(&vs, 10, 4); // nprobe = 4
//! assert_eq!(knng.len(), 300);
//! ```

pub mod brute;
pub mod hnsw;
pub mod ivf;
pub mod ivf_device;
pub mod kmeans;
pub mod kmeans_device;
pub mod nndescent;
pub mod warp_select;

pub use brute::brute_force_device;
pub use hnsw::{Hnsw, HnswParams};
pub use ivf::{IvfFlat, IvfParams};
pub use ivf_device::ivf_knng_device;
pub use kmeans::{train_kmeans, Kmeans};
pub use kmeans_device::{assign_device, train_kmeans_device};
pub use nndescent::{nn_descent, NnDescentParams};
pub use warp_select::brute_force_warpselect;
