//! Lloyd's k-means — the coarse quantizer of the IVF-Flat baseline.
//!
//! The implementation moved to `wknng_data::kmeans` so the product
//! quantizer (`wknng_data::pq`) can train codebooks with it without a
//! dependency cycle; this module re-exports it verbatim, so every existing
//! `wknng_baseline::kmeans::*` path keeps working.

pub use wknng_data::kmeans::{train_kmeans, Kmeans};

#[cfg(test)]
mod tests {
    use super::*;
    use wknng_data::DatasetSpec;

    #[test]
    fn reexport_is_the_shared_implementation() {
        let vs = DatasetSpec::UniformCube { n: 60, dim: 5 }.generate(2).vectors;
        let here = train_kmeans(&vs, 8, 10, 3);
        let there = wknng_data::train_kmeans(&vs, 8, 10, 3);
        assert_eq!(here.centroids, there.centroids);
        assert_eq!(here.assignment, there.assignment);
        let _typed: Kmeans = here; // same type, not a copy
    }
}
