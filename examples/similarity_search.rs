//! Similarity search over a K-NN graph: greedy graph traversal answers
//! out-of-sample queries using the w-KNNG edges as the navigation structure
//! (the other application family named in the paper's abstract).
//!
//! ```text
//! cargo run --release --example similarity_search
//! ```

use wknng::prelude::*;

fn main() {
    // "Catalog embeddings": 3000 points on a low-dimensional manifold in
    // 96-d, the geometry of learned product/image embeddings.
    let n = 3000;
    let ds = DatasetSpec::Manifold { n, ambient_dim: 96, intrinsic_dim: 5 }.generate(3);
    let vs = &ds.vectors;
    println!("catalog: {} ({} x {})", ds.name, vs.len(), vs.dim());

    let (graph, timings) = WknngBuilder::new(16)
        .trees(8)
        .leaf_size(48)
        .exploration(2)
        .seed(4)
        .build_native(vs)
        .expect("valid parameters");
    println!("index (K-NN graph) built in {:.1} ms", timings.total_ms());

    // Structural sanity: the search needs a (nearly) connected graph.
    let stats = graph_stats(&graph.lists);
    println!(
        "graph: {} edges, {} weakly connected component(s), hubness {:.1}, symmetry {:.2}",
        stats.edges, stats.components, stats.hubness, stats.symmetry
    );

    // Out-of-sample queries: perturbed catalog entries.
    let nq = 50;
    let queries: Vec<Vec<f32>> = (0..nq)
        .map(|q| {
            let base = vs.row(q * 37 % n);
            base.iter().enumerate().map(|(j, &v)| v + 0.001 * ((q + j) as f32).sin()).collect()
        })
        .collect();

    let k = 10;
    let params = SearchParams { k, beam: 48, entries: 4, metric: Metric::SquaredL2 };
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut evals = 0usize;
    let t0 = std::time::Instant::now();
    for q in &queries {
        let (approx, sstats) = search(vs, &graph, q, &params);
        evals += sstats.distance_evals;
        // Exact answer by brute force for scoring.
        let mut exact: Vec<Neighbor> =
            (0..n).map(|j| Neighbor::new(j as u32, sq_l2(q, vs.row(j)))).collect();
        exact.sort_by(|a, b| a.key().partial_cmp(&b.key()).expect("finite"));
        exact.truncate(k);
        total += k;
        for e in &exact {
            if approx.iter().any(|a| a.index == e.index) {
                hits += 1;
            }
        }
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let r = hits as f64 / total as f64;
    println!(
        "{nq} graph searches: recall@{k} = {r:.3}, {:.0} distance evals/query (vs {n} for brute), {:.2} ms/query incl. exact scoring",
        evals as f64 / nq as f64,
        ms / nq as f64
    );
    assert!(r > 0.8, "graph search recall too low: {r:.3}");
    println!("ok: the w-KNNG doubles as a navigable search index");
}
