//! Sweep the three warp-centric kernel variants across dimensionality on the
//! simulated GPU — a user-sized version of experiment E4, showing the
//! atomic/tiled crossover claimed by the paper's abstract.
//!
//! ```text
//! cargo run --release --example dimension_sweep
//! ```

use wknng::prelude::*;

fn main() {
    let n = 512;
    let k = 8;
    let dev = DeviceConfig::scaled_gpu();
    println!("device: {} | n = {n}, k = {k}, leaf = 32, T = 2", dev.name);
    println!("{:>5}  {:>12}  {:>12}  {:>12}  winner", "dim", "basic", "atomic", "tiled");

    for dim in [4usize, 8, 16, 32, 64, 128] {
        let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 8, spread: 0.3 }
            .generate(dim as u64)
            .vectors;
        let mut cycles = Vec::new();
        for variant in KernelVariant::ALL {
            let (_, reports) = WknngBuilder::new(k)
                .trees(2)
                .leaf_size(32)
                .exploration(0)
                .variant(variant)
                .seed(6)
                .build_device(&vs, &dev)
                .expect("valid parameters");
            cycles.push((variant, reports.bucket.cycles));
        }
        let winner = cycles
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("three variants")
            .0;
        println!(
            "{:>5}  {:>12.0}  {:>12.0}  {:>12.0}  {}",
            dim,
            cycles[0].1,
            cycles[1].1,
            cycles[2].1,
            winner.name()
        );
    }
    println!("\nexpected shape: atomic competitive at small dim, tiled dominant at large dim,");
    println!("basic always worst (it re-reads every coordinate once per pair).");
}
