//! Quickstart: build an approximate K-NN graph, score it, and compare the
//! native backend with a simulated-GPU build.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wknng::prelude::*;

fn main() {
    // A SIFT-shaped synthetic dataset: 2000 points in 128 dimensions.
    let ds = DatasetSpec::sift_like(2000).generate(42);
    let vs = &ds.vectors;
    println!("dataset: {} ({} x {})", ds.name, vs.len(), vs.dim());

    let k = 10;

    // Exact ground truth (the oracle the recall metric compares against).
    let t0 = std::time::Instant::now();
    let truth = exact_knn(vs, k, Metric::SquaredL2);
    println!("exact brute force: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    // Native (multi-threaded CPU) build.
    let builder = WknngBuilder::new(k).trees(8).leaf_size(32).exploration(1).seed(1);
    let (graph, timings) = builder.build_native(vs).expect("valid parameters");
    println!(
        "w-KNNG native:     {:.1} ms (forest {:.1} + buckets {:.1} + explore {:.1}), recall@{k} = {:.3}",
        timings.total_ms(),
        timings.forest_ms,
        timings.bucket_ms,
        timings.explore_ms,
        recall(&graph.lists, &truth),
    );

    // Simulated-GPU build with the tiled warp-centric kernel.
    let dev = DeviceConfig::pascal_like();
    let (g2, reports) =
        builder.variant(KernelVariant::Tiled).build_device(vs, &dev).expect("valid parameters");
    let total = reports.total();
    println!(
        "w-KNNG device:     {:.3} simulated ms on {} ({:.1}M cycles, {:.1}% divergence), recall@{k} = {:.3}",
        total.ms(&dev),
        dev.name,
        total.cycles / 1e6,
        100.0 * total.stats.divergence_ratio(),
        recall(&g2.lists, &truth),
    );

    // Inspect one neighborhood.
    let p = 0;
    let nbs: Vec<String> = graph
        .neighbors(p)
        .iter()
        .take(5)
        .map(|nb| format!("{}({:.3})", nb.index, nb.dist))
        .collect();
    println!("point {p}: nearest 5 of {k}: {}", nbs.join(", "));
}
