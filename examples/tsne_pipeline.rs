//! t-SNE pipeline: the motivating application named in the paper's abstract.
//!
//! t-SNE needs, for every point, its K nearest neighbors to build the sparse
//! high-dimensional affinity matrix; K-NNG construction dominates t-SNE
//! preprocessing time at scale. This example runs the `wknng-tsne` crate's
//! full pipeline — approximate K-NNG → perplexity-calibrated affinities →
//! 2-D embedding — and verifies the embedding recovers the clusters.
//!
//! ```text
//! cargo run --release --example tsne_pipeline
//! ```

use wknng::prelude::*;
use wknng::tsne::{affinities_from_knng, embed, TsneParams};

fn main() {
    let n = 900;
    let clusters = 6;
    let ds = DatasetSpec::GaussianClusters { n, dim: 64, clusters, spread: 0.12 }.generate(5);
    let vs = &ds.vectors;
    let k = 15;
    println!("dataset: {} — embedding {n} points into 2-D", ds.name);

    // 1. K-NNG via w-KNNG (the step the paper accelerates).
    let t0 = std::time::Instant::now();
    let (graph, _) = WknngBuilder::new(k)
        .trees(6)
        .leaf_size(48)
        .exploration(1)
        .seed(9)
        .build_native(vs)
        .expect("valid parameters");
    println!("k-NN graph: {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    // 2. Sparse affinities at perplexity 5.
    let t1 = std::time::Instant::now();
    let aff = affinities_from_knng(&graph.lists, 5.0);
    println!(
        "affinities: {:.1} ms ({} nonzeros, mass {:.4})",
        t1.elapsed().as_secs_f64() * 1e3,
        aff.rows.iter().map(|r| r.len()).sum::<usize>(),
        aff.total_mass()
    );

    // 3. Gradient descent.
    let t2 = std::time::Instant::now();
    let emb =
        embed(&aff, &TsneParams { iters: 250, learning_rate: 150.0, ..TsneParams::default() });
    println!(
        "embedding: {:.1} ms, KL {:.3} -> {:.3}",
        t2.elapsed().as_secs_f64() * 1e3,
        emb.kl_initial,
        emb.kl_final
    );

    // 4. Validate: same-cluster pairs should be closer in 2-D than
    // cross-cluster pairs (cluster of point i is i % clusters).
    let (mut same, mut same_n, mut cross, mut cross_n) = (0.0f64, 0u64, 0.0f64, 0u64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = emb.point(i)[0] - emb.point(j)[0];
            let dy = emb.point(i)[1] - emb.point(j)[1];
            let d = (dx * dx + dy * dy).sqrt();
            if i % clusters == j % clusters {
                same += d;
                same_n += 1;
            } else {
                cross += d;
                cross_n += 1;
            }
        }
    }
    let (same, cross) = (same / same_n as f64, cross / cross_n as f64);
    println!("mean 2-D distance: same-cluster {same:.3}, cross-cluster {cross:.3}");
    let ratio = cross / same;
    println!("separation ratio: {ratio:.2}x (>1.5x means the embedding recovered the clusters)");
    assert!(ratio > 1.5, "t-SNE on the approximate K-NNG failed to separate clusters");
    assert!(emb.kl_final < emb.kl_initial, "optimisation must reduce KL");
    println!("ok: approximate K-NNG preserved the structure t-SNE needs");
}
