//! Streaming updates: extend a built K-NN graph with new points without a
//! full rebuild, and watch quality degrade gracefully until a rebuild pays.
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use wknng::prelude::*;

fn main() {
    let total = 2400;
    let batch = 300;
    let base_n = total - 4 * batch;
    let all = DatasetSpec::Manifold { n: total, ambient_dim: 48, intrinsic_dim: 5 }.generate(21);
    println!("stream: {} base points + 4 batches of {batch} ({})", base_n, all.name);

    let base = all.vectors.gather(&(0..base_n).collect::<Vec<_>>());
    let k = 10;
    let (mut graph, timings) = WknngBuilder::new(k)
        .trees(8)
        .leaf_size(32)
        .exploration(1)
        .seed(2)
        .build_native(&base)
        .expect("valid parameters");
    println!("initial build over {base_n} points: {:.1} ms", timings.total_ms());

    let mut vectors = base;
    for b in 0..4 {
        let lo = base_n + b * batch;
        let new = all.vectors.gather(&(lo..lo + batch).collect::<Vec<_>>());
        let t0 = std::time::Instant::now();
        let ext = extend_graph(&vectors, &graph, &new, 0).expect("same dimensionality");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        vectors = ext.vectors;
        graph = ext.graph;

        let truth = exact_knn(&vectors, k, Metric::SquaredL2);
        let r = recall(&graph.lists, &truth);
        println!(
            "after batch {}: {} points, extension {:.1} ms, recall@{k} = {:.3}",
            b + 1,
            vectors.len(),
            ms,
            r
        );
    }

    // Compare with a fresh rebuild at the same parameters. (Extension plus
    // its polish pass can even beat this configuration — the polish acts as
    // an extra exploration round; the rebuild wins back time, not recall.)
    let t0 = std::time::Instant::now();
    let (rebuilt, _) = WknngBuilder::new(k)
        .trees(8)
        .leaf_size(32)
        .exploration(1)
        .seed(2)
        .build_native(&vectors)
        .expect("valid parameters");
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
    let truth = exact_knn(&vectors, k, Metric::SquaredL2);
    println!(
        "full rebuild: {:.1} ms, recall@{k} = {:.3} (same parameters, from scratch)",
        rebuild_ms,
        recall(&rebuilt.lists, &truth)
    );
}
