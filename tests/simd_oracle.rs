//! Differential-oracle suite for the SIMD distance kernels and the PQ-ADC
//! pipeline.
//!
//! The scalar kernels ([`wknng_data::sq_l2`] / [`wknng_data::dot`]) are the
//! oracle: every ground-truth, device-simulation, and bench-metric path in
//! the workspace reduces in their exact order. The AVX2 kernels reassociate
//! (four 8-lane FMA accumulators), so they are *not* bit-identical — this
//! suite pins down how far they may drift (a ULP-scaled bound derived from
//! the term magnitudes) and proves the drift is invisible at every layer
//! above: PQ ADC tables, graph builds, and graph search.
//!
//! CI runs this file twice: once with the default build (AVX2 dispatched
//! where the host has it) and once with `--features force-scalar` (the SIMD
//! module compiled out), so the fallback path can never rot.

use std::sync::Mutex;

use wknng::prelude::*;
use wknng_data::{
    dot, sq_l2, DistanceKernel, KernelMode, KernelModeGuard, PqCodebook, PqParams, ScalarKernel,
    SimdKernel,
};

/// Tests that flip the process-global kernel mode serialize on this lock so
/// they cannot race each other (the pure kernel-vs-kernel tests below call
/// the concrete `ScalarKernel` / `SimdKernel` structs and need no pinning).
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random row: xorshift64*, mapped to roughly [-4, 4).
fn pseudo_row(dim: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    (0..dim)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 8.0
        })
        .collect()
}

/// Error bound for a reassociated f32 reduction of `n` terms whose absolute
/// sum is `mag`: each of the O(n) additions can lose half a ULP of the
/// running magnitude, so `C · n · eps · mag` with a small constant factor
/// covers any summation order (and FMA, which only *reduces* rounding).
fn reduction_tol(n: usize, mag: f32) -> f32 {
    8.0 * f32::EPSILON * n as f32 * mag.max(1.0)
}

#[test]
fn simd_sq_l2_matches_oracle_across_all_dims_to_257() {
    let (scalar, simd) = (ScalarKernel, SimdKernel);
    for dim in 1..=257usize {
        for seed in 0..3u64 {
            let a = pseudo_row(dim, seed * 1000 + dim as u64);
            let b = pseudo_row(dim, seed * 1000 + dim as u64 + 500_000);
            let want = scalar.sq_l2(&a, &b);
            let got = simd.sq_l2(&a, &b);
            // Magnitude of the reduction = the sum itself (all terms >= 0).
            let tol = reduction_tol(dim, want);
            assert!(
                (got - want).abs() <= tol,
                "sq_l2 dim {dim} seed {seed}: simd {got} vs scalar {want} (tol {tol})"
            );
        }
    }
}

#[test]
fn simd_dot_matches_oracle_across_all_dims_to_257() {
    let (scalar, simd) = (ScalarKernel, SimdKernel);
    for dim in 1..=257usize {
        for seed in 0..3u64 {
            let a = pseudo_row(dim, seed * 777 + dim as u64);
            let b = pseudo_row(dim, seed * 777 + dim as u64 + 900_000);
            let want = scalar.dot(&a, &b);
            let got = simd.dot(&a, &b);
            // Dot terms cancel, so the bound scales with the absolute-term
            // sum, not the (possibly tiny) result.
            let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let tol = reduction_tol(dim, mag);
            assert!(
                (got - want).abs() <= tol,
                "dot dim {dim} seed {seed}: simd {got} vs scalar {want} (tol {tol})"
            );
        }
    }
}

#[test]
fn simd_kernels_agree_with_free_function_oracles_exactly_when_scalar() {
    // The ScalarKernel trait impl must BE the free functions — zero drift —
    // or the oracle the suite differentials against is not the oracle the
    // ground truth uses.
    for dim in [1usize, 7, 8, 31, 128] {
        let a = pseudo_row(dim, 11);
        let b = pseudo_row(dim, 23);
        assert_eq!(ScalarKernel.sq_l2(&a, &b), sq_l2(&a, &b));
        assert_eq!(ScalarKernel.dot(&a, &b), dot(&a, &b));
    }
}

#[test]
fn simd_handles_adversarial_values() {
    let (scalar, simd) = (ScalarKernel, SimdKernel);
    // Zeros, exact ties, denormal-adjacent magnitudes, sign flips, and a
    // large-magnitude row that stresses cancellation in dot.
    let cases: Vec<(Vec<f32>, Vec<f32>)> = vec![
        (vec![0.0; 37], vec![0.0; 37]),
        (pseudo_row(64, 5), pseudo_row(64, 5)), // identical rows: distance 0
        (vec![1e-20; 19], vec![-1e-20; 19]),
        (vec![3.0e18, -3.0e18, 1.0], vec![-3.0e18, 3.0e18, 2.0]),
    ];
    for (i, (a, b)) in cases.iter().enumerate() {
        let want = scalar.sq_l2(a, b);
        let got = simd.sq_l2(a, b);
        let tol = reduction_tol(a.len(), want);
        assert!(
            (got - want).abs() <= tol || (got.is_infinite() && want.is_infinite()),
            "case {i}: {got} vs {want}"
        );
        let dmag: f32 = a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum();
        let (gd, wd) = (simd.dot(a, b), scalar.dot(a, b));
        assert!(
            (gd - wd).abs() <= reduction_tol(a.len(), dmag)
                || (gd.is_infinite() && wd.is_infinite()),
            "dot case {i}: {gd} vs {wd}"
        );
    }
}

#[test]
fn eval_many_block_path_matches_pointwise_path() {
    // The blocked one-query-vs-many entry the bucket pass uses must return
    // exactly what per-pair dispatch returns for every id, on both kernels.
    let dim = 53;
    let rows: Vec<Vec<f32>> = (0..40).map(|i| pseudo_row(dim, 3000 + i)).collect();
    let vs = VectorSet::from_rows(&rows).unwrap();
    let q = pseudo_row(dim, 99);
    let ids: Vec<u32> = (0..40u32).rev().collect();
    for kern in [&ScalarKernel as &dyn DistanceKernel, &SimdKernel] {
        let mut out = Vec::new();
        kern.eval_many(Metric::SquaredL2, &q, &vs, &ids, &mut out);
        assert_eq!(out.len(), ids.len(), "{}", kern.name());
        for (slot, &id) in out.iter().zip(&ids) {
            assert_eq!(*slot, kern.eval(Metric::SquaredL2, &q, vs.row(id as usize)));
        }
    }
}

#[test]
fn pq_adc_equals_decode_then_l2_within_derived_bound() {
    // ADC(q, code) is definitionally sq_l2(q, decode(code)) computed one
    // subspace at a time — the only divergence allowed is reduction
    // reassociation across the m subspace partials.
    for (dim, m) in [(16usize, 4usize), (13, 4), (7, 3), (96, 8), (5, 5)] {
        let vs = DatasetSpec::GaussianClusters { n: 120, dim, clusters: 4, spread: 0.4 }
            .generate(dim as u64)
            .vectors;
        let cb = PqCodebook::train(&vs, &PqParams { m, ..PqParams::default() }).unwrap();
        let codes = cb.encode(&vs).unwrap();
        for q in [0usize, 17, 119] {
            let table = cb.adc_table(vs.row(q));
            for p in (0..120).step_by(13) {
                let adc = table.distance(codes.row(p));
                let decoded = cb.decode_row(codes.row(p));
                let want = sq_l2(vs.row(q), &decoded);
                let tol = reduction_tol(dim, want) + 1e-6;
                assert!(
                    (adc - want).abs() <= tol,
                    "dim {dim} m {m} q {q} p {p}: adc {adc} vs decode-l2 {want}"
                );
            }
        }
    }
}

#[test]
fn pq_adc_error_vs_exact_obeys_the_triangle_bound() {
    // |sqrt(adc) - ||q - x||| <= ||x - decode(x)||: the asymmetric-distance
    // error is bounded by the encoding residual, point by point. This is
    // the bound that makes PQ candidate generation trustworthy.
    let vs = DatasetSpec::GaussianClusters { n: 200, dim: 24, clusters: 6, spread: 0.35 }
        .generate(77)
        .vectors;
    let cb = PqCodebook::train(&vs, &PqParams { m: 8, ..PqParams::default() }).unwrap();
    let codes = cb.encode(&vs).unwrap();
    for q in (0..200).step_by(29) {
        let table = cb.adc_table(vs.row(q));
        for p in (0..200).step_by(17) {
            let residual = sq_l2(vs.row(p), &cb.decode_row(codes.row(p))).sqrt();
            let exact = sq_l2(vs.row(q), vs.row(p)).sqrt();
            let adc = table.distance(codes.row(p)).max(0.0).sqrt();
            assert!(
                (adc - exact).abs() <= residual + 1e-4 * (1.0 + exact),
                "q {q} p {p}: |{adc} - {exact}| > residual {residual}"
            );
        }
    }
}

#[test]
fn native_build_is_recall_identical_under_simd_and_forced_scalar() {
    // Cross-layer equivalence: the same build under the dispatched kernel
    // and under the pinned scalar oracle. Reassociation can flip genuine
    // distance *ties* between candidates, so the builds are documented as
    // recall-identical (same quality against ground truth) rather than
    // bit-exact; on this clustered set with distinct pair distances the
    // neighbor id sets also agree point-for-point.
    let _lock = MODE_LOCK.lock().unwrap();
    let vs = DatasetSpec::GaussianClusters { n: 500, dim: 32, clusters: 8, spread: 0.3 }
        .generate(13)
        .vectors;
    let build = || {
        WknngBuilder::new(10)
            .trees(6)
            .leaf_size(32)
            .exploration(1)
            .seed(4242)
            .build_native(&vs)
            .unwrap()
            .0
    };
    let auto = build();
    let scalar = {
        let _pin = KernelModeGuard::pin(KernelMode::ForceScalar);
        build()
    };
    let truth = exact_knn(&vs, 10, Metric::SquaredL2);
    let (ra, rs) = (recall(&auto.lists, &truth), recall(&scalar.lists, &truth));
    assert!(
        (ra - rs).abs() <= 0.005,
        "kernel dispatch changed build quality: simd-path {ra:.4} vs scalar {rs:.4}"
    );
    let mut mismatched = 0usize;
    for (a, s) in auto.lists.iter().zip(&scalar.lists) {
        let ia: Vec<u32> = a.iter().map(|nb| nb.index).collect();
        let is_: Vec<u32> = s.iter().map(|nb| nb.index).collect();
        if ia != is_ {
            mismatched += 1;
        }
    }
    assert!(
        mismatched <= 5,
        "{mismatched}/500 lists diverged between simd and scalar builds (ties should be rare)"
    );
}

#[test]
fn graph_search_answers_are_stable_across_kernel_modes() {
    let _lock = MODE_LOCK.lock().unwrap();
    let vs =
        DatasetSpec::Manifold { n: 400, ambient_dim: 24, intrinsic_dim: 3 }.generate(55).vectors;
    let (g, _) = WknngBuilder::new(10)
        .trees(6)
        .leaf_size(24)
        .exploration(2)
        .seed(56)
        .build_native(&vs)
        .unwrap();
    let params = SearchParams { k: 10, beam: 48, entries: 2, metric: Metric::SquaredL2 };
    let queries: Vec<Vec<f32>> =
        (0..25).map(|q| vs.row(q * 16 % 400).iter().map(|v| v + 2e-3).collect()).collect();
    let run = || -> Vec<Vec<u32>> {
        queries
            .iter()
            .map(|q| search(&vs, &g, q, &params).0.iter().map(|nb| nb.index).collect())
            .collect()
    };
    let auto = run();
    let scalar = {
        let _pin = KernelModeGuard::pin(KernelMode::ForceScalar);
        run()
    };
    let mut agree = 0usize;
    let mut total = 0usize;
    for (a, s) in auto.iter().zip(&scalar) {
        total += s.len();
        agree += a.iter().filter(|id| s.contains(id)).count();
    }
    let overlap = agree as f64 / total as f64;
    assert!(overlap >= 0.99, "search ids diverged across kernel modes: overlap {overlap:.4}");
}

#[test]
fn kernel_mode_guard_restores_dispatch() {
    let _lock = MODE_LOCK.lock().unwrap();
    let before = wknng_data::kernel_mode();
    {
        let _pin = KernelModeGuard::pin(KernelMode::ForceScalar);
        assert_eq!(wknng_data::kernel_mode(), KernelMode::ForceScalar);
        assert_eq!(wknng_data::kernel().name(), "scalar");
    }
    assert_eq!(wknng_data::kernel_mode(), before);
}

#[test]
fn pq_build_recall_degradation_is_bounded_and_reproducible() {
    // The tentpole's acceptance bound for quantized builds: PQ loses
    // bounded recall versus the f32 build of the same shape, the loss
    // shrinks as m grows (finer subspaces, smaller encoding residual —
    // the E20 ablation curve), and every build is deterministic in the
    // seed. Reference figures on this set: m=8 ≈ 0.77, m=16 ≈ 0.90,
    // m=32 ≈ 0.97 against f32 ≈ 0.985.
    let vs = DatasetSpec::GaussianClusters { n: 600, dim: 32, clusters: 10, spread: 0.3 }
        .generate(31)
        .vectors;
    let truth = exact_knn(&vs, 10, Metric::SquaredL2);
    let build = |quant| {
        WknngBuilder::new(10)
            .trees(6)
            .leaf_size(32)
            .exploration(1)
            .seed(7)
            .quant(quant)
            .build_native(&vs)
            .unwrap()
            .0
    };
    let rf = recall(&build(QuantMode::None).lists, &truth);
    let pq_a = build(QuantMode::Pq { m: 16 });
    let pq_b = build(QuantMode::Pq { m: 16 });
    assert_eq!(pq_a, pq_b, "PQ build must be reproducible");
    let sweep: Vec<f64> = [8usize, 16, 32]
        .iter()
        .map(|&m| recall(&build(QuantMode::Pq { m }).lists, &truth))
        .collect();
    assert!(
        sweep.windows(2).all(|w| w[1] >= w[0] - 0.02),
        "recall must improve with finer subspaces: {sweep:?}"
    );
    assert!(sweep[0] > 0.7, "pq m=8 recall floor: {:.3}", sweep[0]);
    assert!(sweep[1] >= rf - 0.12, "pq m=16 degradation too large: f32 {rf:.3} vs {:.3}", sweep[1]);
    assert!(sweep[2] >= rf - 0.05, "pq m=32 degradation too large: f32 {rf:.3} vs {:.3}", sweep[2]);
}
