//! Integration coverage for the extension features: graph metrics and
//! symmetrization, graph search, HNSW, sparse projections, quantization and
//! the device slot-sorting kernel.

use wknng::core::kernels::run_basic;
use wknng::core::kernels::{sort_slots_device, DeviceState, TreeLayout};
use wknng::prelude::*;

fn manifold(n: usize, seed: u64) -> VectorSet {
    DatasetSpec::Manifold { n, ambient_dim: 32, intrinsic_dim: 4 }.generate(seed).vectors
}

#[test]
fn symmetrized_graph_connects_and_searches_better() {
    let vs = manifold(400, 1);
    let (g, _) = WknngBuilder::new(8)
        .trees(4)
        .leaf_size(16)
        .exploration(1)
        .seed(2)
        .build_native(&vs)
        .expect("valid");
    let before = graph_stats(&g.lists);
    let sym = symmetrize(&g.lists, None);
    let after = graph_stats(&sym);
    assert_eq!(after.symmetry, 1.0, "uncapped symmetrization is exact");
    assert!(after.components <= before.components);
    assert!(after.edges >= before.edges);
    // A capped symmetrization bounds degrees but may drop some reverse edges.
    let capped = symmetrize(&g.lists, Some(10));
    let cs = graph_stats(&capped);
    assert!(cs.max_degree <= 10);
    assert!(cs.symmetry >= before.symmetry);
}

#[test]
fn graph_search_beats_scanning() {
    let vs = manifold(600, 3);
    let (g, _) = WknngBuilder::new(12)
        .trees(6)
        .leaf_size(24)
        .exploration(2)
        .seed(4)
        .build_native(&vs)
        .expect("valid");
    let q: Vec<f32> = vs.row(100).iter().map(|v| v + 2e-3).collect();
    let (res, stats) = search(&vs, &g, &q, &SearchParams::default());
    assert_eq!(res[0].index, 100);
    assert!(
        stats.distance_evals * 3 < 600,
        "search evaluated {} of 600 points",
        stats.distance_evals
    );
}

#[test]
fn hnsw_and_wknng_build_comparable_graphs() {
    let vs = manifold(350, 5);
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let (g, _) = WknngBuilder::new(8)
        .trees(8)
        .leaf_size(24)
        .exploration(2)
        .seed(6)
        .build_native(&vs)
        .expect("valid");
    let hnsw = Hnsw::build(&vs, HnswParams::default());
    let hg = hnsw.knng(&vs, 8, 64);
    let (rw, rh) = (recall(&g.lists, &truth), recall(&hg, &truth));
    assert!(rw > 0.85, "w-KNNG {rw:.3}");
    assert!(rh > 0.85, "HNSW {rh:.3}");
}

#[test]
fn sparse_projection_builds_match_quality_of_dense() {
    let vs = DatasetSpec::sift_like(400).generate(7).vectors;
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let base = WknngBuilder::new(8).trees(6).leaf_size(24).exploration(1).seed(8);
    let (dense, _) = base.build_native(&vs).expect("valid");
    let (sparse, _) = base
        .projection(ProjectionKind::SparseSign { density: 0.2 })
        .build_native(&vs)
        .expect("valid");
    let (rd, rs) = (recall(&dense.lists, &truth), recall(&sparse.lists, &truth));
    assert!(rs > rd - 0.1, "sparse {rs:.3} vs dense {rd:.3}");
}

#[test]
fn quantized_build_preserves_most_recall() {
    let vs = DatasetSpec::sift_like(400).generate(9).vectors;
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let q = wknng::data::QuantizedSet::quantize(&vs).expect("valid");
    assert_eq!(q.code_bytes(), 400 * 128);
    let decoded = q.decode();
    let (g, _) = WknngBuilder::new(8)
        .trees(8)
        .leaf_size(32)
        .exploration(1)
        .seed(10)
        .build_native(&decoded)
        .expect("valid");
    let r = recall(&g.lists, &truth);
    assert!(r > 0.85, "sq8 recall {r:.3}");
}

#[test]
fn device_sorted_slots_decode_to_the_same_graph() {
    let vs = manifold(100, 11);
    let dev = DeviceConfig::test_tiny();
    let forest = build_forest(
        &vs,
        ForestParams { num_trees: 2, tree: TreeParams { leaf_size: 16, ..TreeParams::default() } },
        12,
    )
    .expect("valid");
    let state = DeviceState::upload(&vs, 6);
    for tree in &forest.trees {
        run_basic(&dev, &state, &TreeLayout::upload(tree, 100)).expect("no fault plan installed");
    }
    let before = state.download();
    let report = sort_slots_device(&dev, &state).expect("k <= 32");
    assert!(report.cycles > 0.0);
    let after = state.download();
    assert_eq!(before, after, "sorting must not change graph content");
    // And the raw slot order is now ascending per point.
    let slots = state.slots.to_vec();
    for p in 0..100 {
        let row = &slots[p * 6..(p + 1) * 6];
        for w in row.windows(2) {
            assert!(w[0] <= w[1], "point {p} slots unsorted");
        }
    }
}

#[test]
fn incremental_mode_is_usable_through_the_prelude() {
    let vs = manifold(200, 13);
    let (g, _) = WknngBuilder::new(6)
        .trees(3)
        .leaf_size(16)
        .exploration(3)
        .exploration_mode(ExplorationMode::Incremental)
        .seed(14)
        .build_native(&vs)
        .expect("valid");
    let truth = exact_knn(&vs, 6, Metric::SquaredL2);
    assert!(recall(&g.lists, &truth) > 0.85);
}
