//! Chaos harness for live index mutation: deterministic swap-scoped fault
//! injection (rebuild panics, rebuild stalls, poisoned publishes) under
//! sustained query load, proving the zero-downtime-swap acceptance
//! criteria:
//!
//! * every answer is coherent with exactly one epoch — recomputing it
//!   through that epoch's pure [`Epoch::search`] reproduces it bit-exactly
//!   (no torn reads across a swap);
//! * a failed swap — panic, stall, or audit-refused poisoned publish — is a
//!   typed error on the mutation ticket, never a hang, and the old epoch
//!   keeps serving untouched;
//! * a worker killed while holding an old epoch drops its pin on unwind, so
//!   retired generations free themselves ([`EpochHandle::live_epochs`]
//!   shrinks to just the current epoch);
//! * replacing 10% of the index under load, with faults injected at every
//!   swap phase, loses no query, keeps recall@10 of the final epoch at
//!   least 0.9, and bounds both the served p99 and the publish pause.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use wknng::prelude::*;

/// Shared corpus: 1.2k indexed points, 100 out-of-sample queries, and the
/// sequential reference answers over the untouched epoch-0 graph.
#[allow(clippy::type_complexity)]
fn corpus() -> &'static (VectorSet, VectorSet, Knng, Vec<Vec<Neighbor>>) {
    static CORPUS: OnceLock<(VectorSet, VectorSet, Knng, Vec<Vec<Neighbor>>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let dim = 12;
        let all = DatasetSpec::Manifold { n: 1300, ambient_dim: dim, intrinsic_dim: 3 }
            .generate(150)
            .vectors;
        let index = VectorSet::new(all.as_flat()[..1200 * dim].to_vec(), dim).unwrap();
        let queries = VectorSet::new(all.as_flat()[1200 * dim..].to_vec(), dim).unwrap();
        let (g, _) = WknngBuilder::new(10)
            .trees(5)
            .leaf_size(32)
            .exploration(2)
            .seed(151)
            .build_native(&index)
            .expect("valid build");
        let reference: Vec<Vec<Neighbor>> = (0..queries.len())
            .map(|q| search(&index, &g, queries.row(q), &SearchParams::default()).0)
            .collect();
        (index, queries, g, reference)
    })
}

fn mutable_engine(chaos: Option<FaultPlan>, cfg: ServeConfig) -> ServeEngine {
    let (vs, _, g, _) = corpus();
    let index = ServeIndex::from_parts(vs.clone(), g.lists.clone()).unwrap();
    let cfg = ServeConfig { mutate: Some(MutatePolicy::default()), chaos, ..cfg };
    ServeEngine::start(index, cfg).unwrap()
}

/// Fresh points from the same manifold, for insert batches.
fn fresh_points(n: usize, seed: u64) -> VectorSet {
    DatasetSpec::Manifold { n, ambient_dim: 12, intrinsic_dim: 3 }.generate(seed).vectors
}

/// Recall@k of `answers` against exact ground truth over the epoch's live
/// points (brute force per query — the mutation-aware quality oracle).
fn recall_against_epoch(epoch: &Epoch, queries: &VectorSet, answers: &[Vec<Neighbor>]) -> f64 {
    let k = answers.iter().map(Vec::len).max().unwrap_or(0).max(1);
    let (mut hits, mut total) = (0usize, 0usize);
    for (q, got) in answers.iter().enumerate() {
        let query = queries.row(q);
        let mut exact: Vec<(f32, u32)> = (0..epoch.len())
            .filter(|&i| !epoch.deleted[i])
            .map(|i| (sq_l2(query, epoch.vectors.row(i)), i as u32))
            .collect();
        exact.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        exact.truncate(k);
        hits += got.iter().filter(|nb| exact.iter().any(|&(_, i)| i == nb.index)).count();
        total += k;
    }
    hits as f64 / total as f64
}

#[test]
fn concurrent_answers_are_coherent_with_exactly_one_epoch() {
    let (_, queries, _, _) = corpus();
    let engine = mutable_engine(None, ServeConfig { batch_size: 8, ..ServeConfig::default() });
    let params = SearchParams::default();
    // Pin every generation as it appears so recomputation can always reach
    // the epoch an answer claims, however long ago it was retired.
    let mut pinned: HashMap<u64, Arc<Epoch>> = HashMap::new();
    pinned.insert(0, engine.pin_epoch());
    let mut tickets = Vec::new();
    // Interleave query waves with insert batches *without* waiting for the
    // queries, so answers genuinely straddle the swaps.
    for (wave, seed) in [(0usize, 201u64), (1, 202), (2, 203)] {
        for q in (wave * 30)..(wave * 30 + 30) {
            tickets.push((q % 100, engine.submit(queries.row(q % 100).to_vec()).unwrap()));
        }
        let outcome = engine.insert(fresh_points(15, seed)).unwrap().wait().expect("published");
        assert_eq!(outcome.epoch, wave as u64 + 1);
        assert_eq!(outcome.applied, 15);
        pinned.insert(outcome.epoch, engine.find_epoch(outcome.epoch).expect("just published"));
    }
    let mut by_epoch: HashMap<u64, usize> = HashMap::new();
    for (q, t) in tickets {
        let res = t.wait_timeout(Duration::from_secs(20)).expect("no query dropped");
        let epoch = pinned.get(&res.epoch).expect("answer names a published epoch");
        let (want, wstats) = epoch.search(queries.row(q), &params);
        assert_eq!(res.neighbors, want, "query {q} torn across epoch {}", res.epoch);
        assert_eq!(res.stats, wstats, "query {q} stats mismatch epoch {}", res.epoch);
        *by_epoch.entry(res.epoch).or_default() += 1;
    }
    assert_eq!(by_epoch.values().sum::<usize>(), 90);
    let report = engine.shutdown();
    assert_eq!(report.epoch, 3);
    assert_eq!(report.swaps, 3);
    assert_eq!(report.mutations_applied, 45);
}

#[test]
fn rebuild_panic_refuses_the_batch_and_the_old_epoch_keeps_serving() {
    let (_, queries, _, reference) = corpus();
    let chaos = FaultPlan::default().panic_rebuild(0);
    let engine = mutable_engine(Some(chaos), ServeConfig::default());
    let err = engine.insert(fresh_points(20, 211)).unwrap().wait().unwrap_err();
    assert!(matches!(err, ServeError::MutationFailed(why) if why.contains("panicked")), "{err}");
    assert_eq!(engine.epoch(), 0, "a refused swap must not publish");
    // The live epoch is untouched: answers are bit-exact with the
    // pre-mutation sequential reference.
    for (q, expect) in reference.iter().enumerate().take(10) {
        let res = engine.query(queries.row(q).to_vec()).unwrap();
        assert_eq!(&res.neighbors, expect, "query {q} after refused swap");
        assert_eq!(res.epoch, 0);
    }
    // The mutator recovered: the next batch (swap attempt 1, unfaulted)
    // publishes normally.
    let outcome = engine.insert(fresh_points(20, 212)).unwrap().wait().expect("recovered");
    assert_eq!(outcome.epoch, 1);
    let report = engine.shutdown();
    assert_eq!(report.swaps, 1);
    assert_eq!(report.mutations_applied, 20);
}

#[test]
fn poisoned_publish_is_refused_by_the_audit_gate() {
    let (_, queries, _, reference) = corpus();
    let chaos = FaultPlan::default().poison_publish(0);
    let engine = mutable_engine(Some(chaos), ServeConfig::default());
    let err = engine.insert(fresh_points(20, 221)).unwrap().wait().unwrap_err();
    assert!(matches!(err, ServeError::MutationFailed(why) if why.contains("validation")), "{err}");
    assert_eq!(engine.epoch(), 0, "a poisoned candidate must never go live");
    for (q, expect) in reference.iter().enumerate().take(10) {
        let res = engine.query(queries.row(q).to_vec()).unwrap();
        assert_eq!(&res.neighbors, expect, "query {q} after poisoned publish");
    }
    let outcome = engine.insert(fresh_points(20, 222)).unwrap().wait().expect("recovered");
    assert_eq!(outcome.epoch, 1);
    engine.shutdown();
}

#[test]
fn rebuild_stall_never_blocks_queries() {
    let (_, queries, _, reference) = corpus();
    let stall = Duration::from_millis(1500);
    let chaos = FaultPlan::default().stall_rebuild(0, stall);
    let engine = mutable_engine(Some(chaos), ServeConfig::default());
    // Kick off the stalled mutation and immediately query under it: the
    // build-aside rebuild must not hold up serving for anything like the
    // stall duration.
    let ticket = engine.insert(fresh_points(20, 231)).unwrap();
    let serving = Instant::now();
    for (q, expect) in reference.iter().enumerate().take(20) {
        let res = engine.query(queries.row(q).to_vec()).unwrap();
        assert_eq!(&res.neighbors, expect, "query {q} during the stall");
        assert_eq!(res.epoch, 0, "the stalled swap has not published yet");
    }
    assert!(
        serving.elapsed() < stall / 2,
        "queries stalled behind the rebuild: {:?}",
        serving.elapsed()
    );
    let outcome = ticket.wait_timeout(Duration::from_secs(30)).expect("stalled, not dead");
    assert_eq!(outcome.epoch, 1);
    let report = engine.shutdown();
    assert_eq!(report.swaps, 1);
}

#[test]
fn killed_worker_drops_its_pin_and_old_epochs_retire() {
    let (_, queries, _, _) = corpus();
    let backoff = Duration::from_millis(100);
    // Serve fault: the worker panics on its second batch — while holding a
    // pinned epoch. Swap chaos is off; this test is about pin leaks.
    let chaos = FaultPlan::default().panic_batch(1);
    let engine = mutable_engine(
        Some(chaos),
        ServeConfig {
            batch_size: 8,
            supervisor: SupervisorPolicy { backoff_initial: backoff, backoff_cap: backoff },
            ..ServeConfig::default()
        },
    );
    // Batch 0 serves on epoch 0; then a publish, then the panicking batch
    // rides epoch 1.
    engine.query(queries.row(0).to_vec()).unwrap();
    engine.insert(fresh_points(10, 241)).unwrap().wait().expect("published");
    let wave: Vec<_> = (0..8).map(|q| engine.submit(queries.row(q).to_vec()).unwrap()).collect();
    for t in wave {
        assert_eq!(t.wait_timeout(Duration::from_secs(10)), Err(ServeError::WorkerLost));
    }
    // Another publish retires epoch 1; the panicked worker's pin must have
    // been dropped by the unwind, not leaked.
    engine.insert(fresh_points(10, 242)).unwrap().wait().expect("published");
    let res = engine.query(queries.row(3).to_vec()).expect("respawned shard serves");
    assert_eq!(res.epoch, 2);
    let settle = Instant::now();
    loop {
        let live = engine.live_epochs();
        if live == vec![2] {
            break;
        }
        assert!(settle.elapsed() < Duration::from_secs(5), "epochs failed to retire: {live:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = engine.shutdown();
    assert_eq!(report.worker_restarts, 1);
    assert_eq!(report.epoch, 2);
}

#[test]
fn sustained_load_with_ten_percent_replaced_under_full_swap_chaos() {
    let (_, queries, _, _) = corpus();
    // One fault at every swap phase: attempt 0 panics in rebuild, attempt 2
    // stalls the rebuild, attempt 4 poisons the publish. Attempts 1, 3, 5
    // retry or continue clean.
    let chaos = FaultPlan::default()
        .panic_rebuild(0)
        .stall_rebuild(2, Duration::from_millis(50))
        .poison_publish(4);
    let engine = Arc::new(mutable_engine(
        Some(chaos),
        ServeConfig { shards: 2, batch_size: 16, ..ServeConfig::default() },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let (mut answered, mut q) = (0u64, 0usize);
            while !stop.load(Ordering::Relaxed) {
                let t = loop {
                    match engine.submit(queries.row(q % 100).to_vec()) {
                        Ok(t) => break t,
                        Err(ServeError::Overloaded { .. }) => {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                        Err(e) => panic!("submit failed under swap chaos: {e}"),
                    }
                };
                // No serve-scoped faults are armed: a dropped or hung query
                // here is a real invariant violation, not chaos fallout.
                t.wait_timeout(Duration::from_secs(20)).expect("query dropped under swap chaos");
                answered += 1;
                q += 1;
            }
            answered
        })
    };
    // Replace 10% of the 1200 points under load: two delete batches of 60,
    // two insert batches of 60, with one retry after each injected refusal.
    let victims_a: Vec<u32> = (0..60).collect();
    let victims_b: Vec<u32> = (60..120).collect();
    let err = engine.delete(victims_a.clone()).unwrap().wait().unwrap_err(); // attempt 0: panic
    assert!(matches!(err, ServeError::MutationFailed(_)), "{err}");
    let o = engine.delete(victims_a).unwrap().wait().expect("retry publishes"); // attempt 1
    assert_eq!((o.epoch, o.applied), (1, 60));
    let o = engine.delete(victims_b).unwrap().wait().expect("stalled, not dead"); // attempt 2
    assert_eq!((o.epoch, o.applied), (2, 60));
    let o = engine.insert(fresh_points(60, 251)).unwrap().wait().expect("clean"); // attempt 3
    assert_eq!((o.epoch, o.applied), (3, 60));
    let err = engine.insert(fresh_points(60, 252)).unwrap().wait().unwrap_err(); // attempt 4: poison
    assert!(matches!(err, ServeError::MutationFailed(why) if why.contains("validation")), "{err}");
    let o = engine.insert(fresh_points(60, 252)).unwrap().wait().expect("retry publishes"); // 5
    assert_eq!((o.epoch, o.applied), (4, 60));
    // Let the load ride the final epoch briefly, then drain.
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let answered = load.join().expect("load thread survived");
    assert!(answered > 100, "load actually ran: {answered} answered");
    // Quality gate: recall@10 of the final epoch against exact ground truth
    // over its live points (the replaced index, tombstones excluded).
    let last = engine.pin_epoch();
    assert_eq!((last.id, last.deleted_count, last.live_len()), (4, 120, 1200));
    let params = SearchParams::default();
    let answers: Vec<Vec<Neighbor>> =
        (0..queries.len()).map(|q| last.search(queries.row(q), &params).0).collect();
    assert!(answers.iter().all(|a| a.iter().all(|nb| !last.deleted[nb.index as usize])));
    let r = recall_against_epoch(&last, queries, &answers);
    assert!(r >= 0.9, "recall@10 after replacing 10% under chaos: {r:.3}");
    let engine = Arc::into_inner(engine).expect("load thread released its handle");
    let report = engine.shutdown();
    assert_eq!(report.epoch, 4);
    assert_eq!(report.swaps, 4);
    assert_eq!(report.mutations_applied, 240);
    assert_eq!(report.served + report.shed, report.submitted, "no query vanished");
    assert!(report.latency_p(99.0) < Duration::from_millis(500), "{:?}", report.latency_p(99.0));
    assert!(
        report.swap_p99_pause_us < 50_000,
        "publish pause must stay tiny: {} us",
        report.swap_p99_pause_us
    );
}
