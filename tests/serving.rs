//! Serving-engine integration: 10k indexed points, 1k out-of-sample
//! queries, batched results identical to sequential `search()`, recall@10
//! against brute force, full report, and admission control.

use std::sync::OnceLock;
use std::time::Duration;

use wknng::prelude::*;

/// One shared 11k-point manifold: the first 10k are indexed (and their graph
/// built once for both tests), the last 1k are the out-of-sample stream.
fn corpus() -> &'static (VectorSet, VectorSet, Knng) {
    static CORPUS: OnceLock<(VectorSet, VectorSet, Knng)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let all = DatasetSpec::Manifold { n: 11_000, ambient_dim: 16, intrinsic_dim: 3 }
            .generate(90)
            .vectors;
        let index = VectorSet::new(all.as_flat()[..10_000 * 16].to_vec(), 16).unwrap();
        let queries = VectorSet::new(all.as_flat()[10_000 * 16..].to_vec(), 16).unwrap();
        let (g, _) = WknngBuilder::new(10)
            .trees(6)
            .leaf_size(32)
            .exploration(2)
            .seed(91)
            .build_native(&index)
            .expect("valid build");
        (index, queries, g)
    })
}

#[test]
fn serve_10k_points_1k_queries_batched_equals_sequential_with_high_recall() {
    let (vs, queries, g) = corpus();
    let params = SearchParams::default(); // k = 10

    // Sequential reference, once.
    let reference: Vec<(Vec<Neighbor>, SearchStats)> =
        (0..queries.len()).map(|q| search(vs, g, queries.row(q), &params)).collect();

    // Brute-force ground truth for recall@10 (exact scan per query).
    let mut hits = 0usize;
    let mut total = 0usize;
    for (q, (res, _)) in reference.iter().enumerate() {
        let mut exact: Vec<Neighbor> = (0..vs.len())
            .map(|p| Neighbor::new(p as u32, Metric::SquaredL2.eval(queries.row(q), vs.row(p))))
            .collect();
        exact.select_nth_unstable_by(9, |a, b| a.key().partial_cmp(&b.key()).unwrap());
        exact.truncate(10);
        total += exact.len();
        hits += exact.iter().filter(|e| res.iter().any(|r| r.index == e.index)).count();
    }
    let recall_at_10 = hits as f64 / total as f64;
    assert!(recall_at_10 >= 0.9, "recall@10 = {recall_at_10:.4}");

    // The engine at every required batch size: results identical to the
    // sequential reference, full report emitted.
    for batch_size in [1usize, 8, 64] {
        let index = ServeIndex::from_parts(vs.clone(), g.lists.clone()).unwrap();
        let engine = ServeEngine::start(
            index,
            ServeConfig {
                shards: 2,
                batch_size,
                linger: Duration::from_micros(100),
                queue_capacity: 2048,
                params,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let tickets: Vec<_> = (0..queries.len())
            .map(|q| engine.submit(queries.row(q).to_vec()).expect("capacity fits the replay"))
            .collect();
        for (q, t) in tickets.into_iter().enumerate() {
            let res = t.wait().expect("served");
            assert_eq!(res.neighbors, reference[q].0, "batch {batch_size}, query {q}");
            assert_eq!(res.stats, reference[q].1, "batch {batch_size}, query {q}");
        }
        let report = engine.shutdown();
        assert_eq!(report.served, queries.len() as u64, "batch {batch_size}");
        assert_eq!(report.rejected, 0);
        assert!(report.throughput_qps > 0.0, "batch {batch_size}");
        let (p50, p95, p99) =
            (report.latency_p(50.0), report.latency_p(95.0), report.latency_p(99.0));
        assert!(p50 > Duration::ZERO, "batch {batch_size}");
        assert!(p50 <= p95 && p95 <= p99, "batch {batch_size}: {p50:?} {p95:?} {p99:?}");
        assert!(report.mean_distance_evals > 0.0);
        assert!(report.batches >= (queries.len() / batch_size.max(1)) as u64);
    }
}

#[test]
fn bounded_queue_rejects_instead_of_blocking() {
    let (vs, queries, g) = corpus();
    let index = ServeIndex::from_parts(vs.clone(), g.lists.clone()).unwrap();
    // Inert engine (no shards): the queue can only fill, so the rejection
    // boundary is deterministic and provably non-blocking.
    let engine = ServeEngine::start(
        index,
        ServeConfig { shards: 0, queue_capacity: 32, ..ServeConfig::default() },
    )
    .unwrap();
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let started = std::time::Instant::now();
    for q in 0..64 {
        match engine.submit(queries.row(q).to_vec()) {
            Ok(_) => admitted += 1,
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!((depth, capacity), (32, 32));
                rejected += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(admitted, 32);
    assert_eq!(rejected, 32);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "overload handling must not block: {:?}",
        started.elapsed()
    );
    let report = engine.shutdown();
    assert_eq!(report.rejected, 32);
    assert_eq!(report.max_queue_depth, 32);
}
