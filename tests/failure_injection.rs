//! Failure injection: poisoned inputs must produce typed errors, not panics
//! or silent garbage.

use wknng::prelude::*;

#[test]
fn nan_coordinates_are_rejected_at_the_boundary() {
    let mut data = vec![0.0f32; 30];
    data[17] = f32::NAN;
    let err = VectorSet::new(data, 3).unwrap_err();
    assert!(err.to_string().contains("non-finite"));

    let mut data = vec![0.0f32; 30];
    data[5] = f32::NEG_INFINITY;
    assert!(VectorSet::new(data, 3).is_err());
}

#[test]
fn zero_dimension_is_rejected() {
    assert!(VectorSet::new(vec![], 0).is_err());
}

#[test]
fn k_out_of_range_is_a_typed_error() {
    let vs = DatasetSpec::UniformCube { n: 20, dim: 4 }.generate(0).vectors;
    let err = WknngBuilder::new(0).build_native(&vs).unwrap_err();
    assert!(matches!(err, KnngError::ZeroK));
    let err = WknngBuilder::new(20).build_native(&vs).unwrap_err();
    assert!(matches!(err, KnngError::KTooLarge { k: 20, n: 20 }));
    let err = WknngBuilder::new(25).build_native(&vs).unwrap_err();
    assert!(matches!(err, KnngError::KTooLarge { .. }));
}

#[test]
fn degenerate_forest_parameters_are_rejected() {
    let vs = DatasetSpec::UniformCube { n: 20, dim: 4 }.generate(0).vectors;
    assert!(matches!(
        WknngBuilder::new(3).trees(0).build_native(&vs),
        Err(KnngError::Forest(_))
    ));
    assert!(matches!(
        WknngBuilder::new(3).leaf_size(1).build_native(&vs),
        Err(KnngError::Forest(_))
    ));
}

#[test]
fn device_constraints_are_typed() {
    let vs = DatasetSpec::UniformCube { n: 50, dim: 4 }.generate(0).vectors;
    let dev = DeviceConfig::test_tiny();
    // Non-L2 metric on device.
    let err = WknngBuilder::new(3)
        .metric(Metric::Cosine)
        .build_device(&vs, &dev)
        .unwrap_err();
    assert!(matches!(err, KnngError::UnsupportedDeviceMetric(_)));
    // Tiled bucket beyond shared-memory capacity.
    let err = WknngBuilder::new(3)
        .variant(KernelVariant::Tiled)
        .leaf_size(100_000)
        .build_device(&vs, &dev)
        .unwrap_err();
    assert!(matches!(err, KnngError::LeafTooLargeForTiled { .. }));
    // The same leaf size is fine for non-tiled variants (clamped by n).
    assert!(WknngBuilder::new(3)
        .variant(KernelVariant::Basic)
        .leaf_size(100_000)
        .build_device(&vs, &dev)
        .is_ok());
}

#[test]
fn duplicate_points_build_successfully() {
    // All-identical points: distances are all zero; the graph must still be
    // well-formed (k distinct neighbors, no self loops, no hang).
    let vs = VectorSet::new(vec![1.0; 60 * 4], 4).unwrap();
    let (g, _) = WknngBuilder::new(5)
        .trees(2)
        .leaf_size(8)
        .exploration(1)
        .build_native(&vs)
        .expect("duplicates are valid input");
    for (p, list) in g.lists.iter().enumerate() {
        assert!(list.len() <= 5);
        assert!(list.iter().all(|nb| nb.index as usize != p));
        assert!(list.iter().all(|nb| nb.dist == 0.0));
        let mut idx: Vec<u32> = list.iter().map(|nb| nb.index).collect();
        idx.dedup();
        assert_eq!(idx.len(), list.len(), "duplicate neighbor at point {p}");
    }
}

#[test]
fn tiny_inputs_work_on_both_backends() {
    // n = k + 1 is the smallest legal instance.
    let vs = DatasetSpec::UniformCube { n: 4, dim: 2 }.generate(1).vectors;
    let builder = WknngBuilder::new(3).trees(1).leaf_size(4).exploration(1);
    let (g, _) = builder.build_native(&vs).expect("valid");
    assert!(g.lists.iter().all(|l| l.len() == 3));
    let dev = DeviceConfig::test_tiny();
    let (gd, _) = builder.build_device(&vs, &dev).expect("valid");
    assert_eq!(g.lists, gd.lists);
}

#[test]
fn corrupt_files_fail_cleanly() {
    let dir = std::env::temp_dir();
    let p = dir.join(format!("wknng-corrupt-{}", std::process::id()));
    std::fs::write(&p, b"definitely not a wknng file").unwrap();
    assert!(wknng::data::io::load_vectors(&p).is_err());
    assert!(wknng::data::io::load_knn(&p).is_err());
    std::fs::remove_file(&p).ok();
}
