//! Failure injection: poisoned inputs must produce typed errors, not panics
//! or silent garbage.

use wknng::prelude::*;

#[test]
fn nan_coordinates_are_rejected_at_the_boundary() {
    let mut data = vec![0.0f32; 30];
    data[17] = f32::NAN;
    let err = VectorSet::new(data, 3).unwrap_err();
    assert!(err.to_string().contains("non-finite"));

    let mut data = vec![0.0f32; 30];
    data[5] = f32::NEG_INFINITY;
    assert!(VectorSet::new(data, 3).is_err());
}

#[test]
fn zero_dimension_is_rejected() {
    assert!(VectorSet::new(vec![], 0).is_err());
}

#[test]
fn k_out_of_range_is_a_typed_error() {
    let vs = DatasetSpec::UniformCube { n: 20, dim: 4 }.generate(0).vectors;
    let err = WknngBuilder::new(0).build_native(&vs).unwrap_err();
    assert!(matches!(err, KnngError::ZeroK));
    let err = WknngBuilder::new(20).build_native(&vs).unwrap_err();
    assert!(matches!(err, KnngError::KTooLarge { k: 20, n: 20 }));
    let err = WknngBuilder::new(25).build_native(&vs).unwrap_err();
    assert!(matches!(err, KnngError::KTooLarge { .. }));
}

#[test]
fn degenerate_forest_parameters_are_rejected() {
    let vs = DatasetSpec::UniformCube { n: 20, dim: 4 }.generate(0).vectors;
    assert!(matches!(WknngBuilder::new(3).trees(0).build_native(&vs), Err(KnngError::Forest(_))));
    assert!(matches!(
        WknngBuilder::new(3).leaf_size(1).build_native(&vs),
        Err(KnngError::Forest(_))
    ));
}

#[test]
fn device_constraints_are_typed() {
    let vs = DatasetSpec::UniformCube { n: 50, dim: 4 }.generate(0).vectors;
    let dev = DeviceConfig::test_tiny();
    // Non-L2 metric on device.
    let err = WknngBuilder::new(3).metric(Metric::Cosine).build_device(&vs, &dev).unwrap_err();
    assert!(matches!(err, KnngError::UnsupportedDeviceMetric(_)));
    // Tiled bucket beyond shared-memory capacity: a typed error under the
    // strict policy; the default policy degrades to the atomic kernel.
    let err = WknngBuilder::new(3)
        .variant(KernelVariant::Tiled)
        .leaf_size(100_000)
        .strict()
        .build_device(&vs, &dev)
        .unwrap_err();
    assert!(matches!(err, KnngError::LeafTooLargeForTiled { .. }));
    assert!(WknngBuilder::new(3)
        .variant(KernelVariant::Tiled)
        .leaf_size(100_000)
        .build_device(&vs, &dev)
        .is_ok());
    // The same leaf size is fine for non-tiled variants (clamped by n).
    assert!(WknngBuilder::new(3)
        .variant(KernelVariant::Basic)
        .leaf_size(100_000)
        .build_device(&vs, &dev)
        .is_ok());
}

#[test]
fn duplicate_points_build_successfully() {
    // All-identical points: distances are all zero; the graph must still be
    // well-formed (k distinct neighbors, no self loops, no hang).
    let vs = VectorSet::new(vec![1.0; 60 * 4], 4).unwrap();
    let (g, _) = WknngBuilder::new(5)
        .trees(2)
        .leaf_size(8)
        .exploration(1)
        .build_native(&vs)
        .expect("duplicates are valid input");
    for (p, list) in g.lists.iter().enumerate() {
        assert!(list.len() <= 5);
        assert!(list.iter().all(|nb| nb.index as usize != p));
        assert!(list.iter().all(|nb| nb.dist == 0.0));
        let mut idx: Vec<u32> = list.iter().map(|nb| nb.index).collect();
        idx.dedup();
        assert_eq!(idx.len(), list.len(), "duplicate neighbor at point {p}");
    }
}

#[test]
fn tiny_inputs_work_on_both_backends() {
    // n = k + 1 is the smallest legal instance.
    let vs = DatasetSpec::UniformCube { n: 4, dim: 2 }.generate(1).vectors;
    let builder = WknngBuilder::new(3).trees(1).leaf_size(4).exploration(1);
    let (g, _) = builder.build_native(&vs).expect("valid");
    assert!(g.lists.iter().all(|l| l.len() == 3));
    let dev = DeviceConfig::test_tiny();
    let (gd, _) = builder.build_device(&vs, &dev).expect("valid");
    assert_eq!(g.lists, gd.lists);
}

// ---------------------------------------------------------------------------
// Injected device faults: the FaultPlan / BuildPolicy / audit machinery.
//
// Fault-aware launch indices cover the bucket and exploration kernels only
// (forest construction and slot sorting use the plain infallible launcher):
// index 0..num_trees-1 are the per-tree bucket launches, exploration
// follows, and every retry attempt consumes an index of its own.
// ---------------------------------------------------------------------------

#[test]
fn transient_launch_failures_recover_within_budget() {
    let vs = DatasetSpec::UniformCube { n: 80, dim: 6 }.generate(9).vectors;
    let dev = DeviceConfig::test_tiny();
    let builder = WknngBuilder::new(5).trees(2).leaf_size(16).exploration(1).seed(7);
    let (clean, _) = builder.build_device(&vs, &dev).unwrap();

    // Two consecutive transient failures on the first bucket launch: the
    // first attempt (index 0) and its first retry (index 1) both fail.
    let scope = FaultScope::install(FaultPlan::new(1).fail_launch(0).fail_launch(1));
    let (faulty, _, events) = builder.build_device_audited(&vs, &dev).unwrap();
    drop(scope);

    assert_eq!(events.retries(), 2, "{}", events.summary());
    assert!(events.as_slice().iter().all(|e| !matches!(e, BuildEvent::VariantDegraded { .. })));
    // Failures happen at launch entry, before any side effect: the recovered
    // build is identical to the fault-free one.
    assert_eq!(faulty.lists, clean.lists);
}

#[test]
fn exhausted_retry_budget_is_a_typed_error() {
    let vs = DatasetSpec::UniformCube { n: 40, dim: 4 }.generate(2).vectors;
    let dev = DeviceConfig::test_tiny();
    // Default policy allows 3 retries; 4 consecutive transients exceed it.
    let plan = (0..=3).fold(FaultPlan::new(1), |p, l| p.fail_launch(l));
    let _scope = FaultScope::install(plan);
    let err = WknngBuilder::new(3).trees(2).leaf_size(8).build_device(&vs, &dev).unwrap_err();
    assert!(matches!(err, KnngError::LaunchFailed { attempts: 4, .. }), "{err}");
}

#[test]
fn bit_flip_is_audited_and_repaired() {
    let vs = DatasetSpec::UniformCube { n: 80, dim: 6 }.generate(9).vectors;
    let dev = DeviceConfig::test_tiny();
    let builder = WknngBuilder::new(5).trees(2).leaf_size(16).exploration(1).seed(7);

    // Flip an exponent bit of one packed slot after the final fault-aware
    // launch (2 bucket trees = indices 0..1, exploration = index 2), so no
    // later kernel can overwrite the corruption before the audit sees it.
    let scope = FaultScope::install(FaultPlan::new(33).flip_bit(2, 61));
    let (healed, _, events) = builder.build_device_audited(&vs, &dev).unwrap();
    drop(scope);

    assert_eq!(events.bit_flips(), 1, "{}", events.summary());
    assert_eq!(events.repairs(), 1, "{}", events.summary());
    assert!(events
        .as_slice()
        .iter()
        .any(|e| matches!(e, BuildEvent::AuditCompleted { corrupted: 1, .. })));
    // The healed slot array audits clean end to end.
    let slots = lists_to_slots(&healed.lists, 5);
    let report = audit_slots(&slots, &vs, 5, Metric::SquaredL2);
    assert!(report.corrupted_points().is_empty());
}

#[test]
fn shared_alloc_failure_degrades_tiled_to_atomic() {
    let vs = DatasetSpec::UniformCube { n: 80, dim: 6 }.generate(4).vectors;
    let dev = DeviceConfig::test_tiny();
    let builder = WknngBuilder::new(5)
        .trees(2)
        .leaf_size(16)
        .exploration(1)
        .seed(3)
        .variant(KernelVariant::Tiled);
    let (clean_atomic, _) = builder.variant(KernelVariant::Atomic).build_device(&vs, &dev).unwrap();

    // A shared-memory allocation failure on the first tiled launch is not
    // retryable: the policy falls down the kernel chain instead.
    let scope = FaultScope::install(FaultPlan::new(5).fail_shared_alloc(0));
    let (degraded, _, events) = builder.build_device_audited(&vs, &dev).unwrap();
    drop(scope);

    assert_eq!(events.degradations(), 1, "{}", events.summary());
    assert!(events.as_slice().iter().any(|e| matches!(
        e,
        BuildEvent::VariantDegraded { from: KernelVariant::Tiled, to: KernelVariant::Atomic, .. }
    )));
    // All three variants maintain identical k-NN sets, so the degraded build
    // matches a clean atomic-from-the-start build exactly — recall included.
    assert_eq!(degraded.lists, clean_atomic.lists);
}

#[test]
fn strict_policy_turns_faults_into_typed_errors_not_panics() {
    let vs = DatasetSpec::UniformCube { n: 60, dim: 5 }.generate(6).vectors;
    let dev = DeviceConfig::test_tiny();
    let builder = WknngBuilder::new(4).trees(2).leaf_size(12).exploration(1).strict();

    let scope = FaultScope::install(FaultPlan::new(1).fail_launch(0));
    let err = builder.build_device(&vs, &dev).unwrap_err();
    drop(scope);
    assert!(matches!(err, KnngError::LaunchFailed { attempts: 1, .. }), "{err}");

    // A bit flip under strict (audit without repair) is an audit failure.
    let scope = FaultScope::install(FaultPlan::new(8).flip_bit(2, 61));
    let err = builder.build_device(&vs, &dev).unwrap_err();
    drop(scope);
    assert!(matches!(err, KnngError::AuditFailed { repaired: 0, .. }), "{err}");
}

#[test]
fn acceptance_one_transient_plus_one_flip_under_default_policy() {
    // The issue's acceptance scenario: one transient launch failure plus one
    // bit flip, fixed seeds throughout. The default policy must complete,
    // log exactly the expected recovery events, and land within 0.01 recall
    // of the fault-free build.
    let vs = DatasetSpec::GaussianClusters { n: 120, dim: 8, clusters: 6, spread: 0.3 }
        .generate(13)
        .vectors;
    let dev = DeviceConfig::test_tiny();
    let builder = WknngBuilder::new(5).trees(3).leaf_size(16).exploration(1).seed(17);
    let (clean, _) = builder.build_device(&vs, &dev).unwrap();

    // Index 0 fails and retries (consuming index 1); trees occupy 1..=3;
    // exploration is index 4 — flip one slot bit right after it.
    let plan = FaultPlan::new(99).fail_launch(0).flip_bit(4, 61);
    let scope = FaultScope::install(plan);
    let (recovered, _, events) = builder.build_device_audited(&vs, &dev).unwrap();
    drop(scope);

    // Exactly one retry, one flip, one audit, one repair — nothing else.
    assert_eq!(events.retries(), 1, "{}", events.summary());
    assert_eq!(events.bit_flips(), 1, "{}", events.summary());
    assert_eq!(events.repairs(), 1, "{}", events.summary());
    assert_eq!(events.degradations(), 0, "{}", events.summary());
    assert_eq!(events.len(), 4, "{}", events.summary());
    assert!(matches!(
        events.as_slice()[0],
        BuildEvent::LaunchRetried { phase: BuildPhase::Bucket, attempt: 1, .. }
    ));
    assert!(matches!(events.as_slice()[2], BuildEvent::AuditCompleted { corrupted: 1, .. }));

    let truth = exact_knn(&vs, 5, Metric::SquaredL2);
    let r_clean = recall(&clean.lists, &truth);
    let r_recovered = recall(&recovered.lists, &truth);
    assert!(
        (r_clean - r_recovered).abs() <= 0.01,
        "recall drifted: clean {r_clean:.4} vs recovered {r_recovered:.4}"
    );

    // The same plan under strict() is a typed error, never a panic.
    let scope = FaultScope::install(FaultPlan::new(99).fail_launch(0).flip_bit(4, 61));
    let err = builder.strict().build_device(&vs, &dev).unwrap_err();
    drop(scope);
    assert!(matches!(err, KnngError::LaunchFailed { .. }), "{err}");
}

#[test]
fn corrupt_files_fail_cleanly() {
    let dir = std::env::temp_dir();
    let p = dir.join(format!("wknng-corrupt-{}", std::process::id()));
    std::fs::write(&p, b"definitely not a wknng file").unwrap();
    assert!(wknng::data::io::load_vectors(&p).is_err());
    assert!(wknng::data::io::load_knn(&p).is_err());

    // Truncation and byte corruption of a real file are *typed* errors.
    let vs = DatasetSpec::UniformCube { n: 10, dim: 4 }.generate(1).vectors;
    wknng::data::io::save_vectors(&vs, &p).unwrap();
    let bytes = std::fs::read(&p).unwrap();
    std::fs::write(&p, &bytes[..bytes.len() - 7]).unwrap();
    assert!(matches!(wknng::data::io::load_vectors(&p), Err(DataError::Truncated { .. })));
    let mut bytes = bytes;
    let mid = bytes.len() - 3;
    bytes[mid] ^= 0x10;
    std::fs::write(&p, &bytes).unwrap();
    assert!(matches!(wknng::data::io::load_vectors(&p), Err(DataError::ChecksumMismatch { .. })));
    std::fs::remove_file(&p).ok();
}
