//! Crash-matrix acceptance suite for the durability layer (see DESIGN.md
//! "Durability & recovery"):
//!
//! * after a crash at **every** injected point — kill-before-fsync,
//!   kill-mid-append, torn-write-at-byte-N, killed checkpoint rename —
//!   warm-start recovery serves an index **bit-identical** to replaying
//!   the acknowledged mutation prefix from scratch through the public
//!   [`GraphExtender`] API (an independent reference, not the recovery
//!   code path's own output);
//! * no acknowledged mutation is ever lost, and no unacknowledged mutation
//!   is ever resurrected;
//! * nothing hangs: every mutation ticket and recovery call resolves
//!   within a bounded wait;
//! * a corrupt newest checkpoint falls back to the previous generation;
//! * recovery is idempotent (recover twice == recover once) and the
//!   recovered engine keeps journaling correctly (warm → mutate → warm
//!   loses nothing);
//! * `fsck` is clean on every post-recovery directory and flags every
//!   seeded corruption class.

use std::path::{Path, PathBuf};
use std::time::Duration;

use wknng::prelude::*;

const DIM: usize = 16;
const K: usize = 8;

/// Base corpus: 260 points on a 3-manifold plus a deterministically built
/// 8-NN graph — the cold-start index every scenario begins from.
fn corpus() -> (VectorSet, Vec<Vec<Neighbor>>) {
    let vs =
        DatasetSpec::Manifold { n: 260, ambient_dim: DIM, intrinsic_dim: 3 }.generate(401).vectors;
    let (g, _) = WknngBuilder::new(K)
        .trees(4)
        .leaf_size(24)
        .exploration(2)
        .seed(402)
        .build_native(&vs)
        .expect("valid build");
    (vs, g.lists)
}

/// The deterministic six-batch mutation workload (4 inserts, 2 deletes)
/// submitted in every scenario. Each WAL append index 0..=5 addresses one
/// of these.
fn workload() -> Vec<MutationOp> {
    let extra =
        DatasetSpec::Manifold { n: 40, ambient_dim: DIM, intrinsic_dim: 3 }.generate(403).vectors;
    let chunk = |r: std::ops::Range<usize>| {
        let rows: Vec<Vec<f32>> = r.map(|i| extra.row(i).to_vec()).collect();
        VectorSet::from_rows(&rows).unwrap()
    };
    vec![
        MutationOp::Insert(chunk(0..10)),
        MutationOp::Insert(chunk(10..20)),
        MutationOp::Delete(vec![3, 7, 11]),
        MutationOp::Insert(chunk(20..30)),
        MutationOp::Delete(vec![20, 21, 261]),
        MutationOp::Insert(chunk(30..40)),
    ]
}

fn scratch_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wknng-durability-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn durable_cfg(dir: &Path, crash: Option<CrashPlan>, checkpoint_every: u64) -> ServeConfig {
    ServeConfig {
        mutate: Some(MutatePolicy::default()),
        durability: Some(DurabilityPolicy { checkpoint_every, crash, ..DurabilityPolicy::at(dir) }),
        ..ServeConfig::default()
    }
}

/// Submit the workload one batch at a time with bounded waits. Returns how
/// many batches were *acknowledged* (ticket resolved `Ok`) before the
/// injected crash killed the mutator. A timed-out ticket is a hang — the
/// one outcome the suite forbids outright.
fn run_workload(engine: &ServeEngine, ops: &[MutationOp]) -> (usize, bool) {
    let mut acked = 0;
    for (i, op) in ops.iter().enumerate() {
        let ticket = match engine.mutate(op.clone()) {
            Ok(t) => t,
            Err(ServeError::MutationFailed(_)) => return (acked, true),
            Err(e) => panic!("batch {i}: unexpected submit error {e}"),
        };
        match ticket.wait_timeout(Duration::from_secs(30)) {
            Ok(_) => acked += 1,
            Err(ServeError::DeadlineExceeded) => panic!("batch {i}: mutation ticket hung"),
            Err(_) => return (acked, true),
        }
    }
    (acked, false)
}

/// Independent replay-from-scratch reference: apply the acknowledged
/// prefix through the public extender API with the live mutator's own
/// policy semantics (refine after insert, compact past the tombstone
/// threshold). Recovery must reproduce this bit-for-bit.
fn reference_state(
    vs: &VectorSet,
    lists: &[Vec<Neighbor>],
    ops: &[MutationOp],
    policy: &MutatePolicy,
) -> (VectorSet, Vec<Vec<Neighbor>>, Vec<bool>) {
    let graph_k = lists.iter().map(Vec::len).max().filter(|&k| k > 0).unwrap_or(K);
    let graph = Knng {
        lists: lists.to_vec(),
        params: WknngParams { k: graph_k, metric: Metric::SquaredL2, ..WknngParams::default() },
    };
    let mut ext = GraphExtender::from_parts(vs.clone(), graph, policy.beam).unwrap();
    for op in ops {
        match op {
            MutationOp::Insert(points) => {
                ext.insert_batch(points).unwrap();
                if policy.refine_rounds > 0 {
                    ext.refine(policy.refine_rounds);
                }
            }
            MutationOp::Delete(ids) => {
                ext.delete_batch(ids).unwrap();
            }
        }
        if ext.tombstone_fraction() > policy.compact_threshold {
            ext.compact();
        }
    }
    (ext.vectors().clone(), ext.graph().lists, ext.deleted_flags().to_vec())
}

/// Assert the recovered engine's published epoch equals the reference
/// replay of exactly the acknowledged prefix, and that it actually serves.
fn assert_recovered_matches(engine: &ServeEngine, acked: usize, label: &str) {
    let (vs, lists) = corpus();
    let ops = workload();
    let (rvs, rlists, rdeleted) =
        reference_state(&vs, &lists, &ops[..acked], &MutatePolicy::default());
    let epoch = engine.pin_epoch();
    assert_eq!(epoch.vectors, rvs, "{label}: recovered vectors differ from replay-from-scratch");
    assert_eq!(epoch.lists, rlists, "{label}: recovered lists differ from replay-from-scratch");
    assert_eq!(epoch.deleted, rdeleted, "{label}: recovered tombstones differ");
    drop(epoch);
    let res = engine.query(vs.row(5).to_vec()).expect("recovered engine serves");
    assert_eq!(res.neighbors[0].index, 5, "{label}: self-query must find itself");
}

/// The tentpole matrix: one scenario per injected crash point, spanning
/// every `CrashPlan` kind, early and late in the workload, with checkpoint
/// cadences that put crashes both before and after sealed generations.
///
/// Append indices address WAL appends (one per batch); rename indices
/// address atomic renames on the mutator thread — with `checkpoint_every =
/// 2`, renames 0..=3 are checkpoint 1 (vectors, graph, manifest, WAL
/// prune), 4..=7 are checkpoint 2, and so on.
#[test]
fn crash_at_every_injected_point_recovers_exactly_the_acked_prefix() {
    let specs: &[(&str, u64)] = &[
        // Append crashes: nothing of the dying record survives...
        ("pre-fsync@0", 2),
        ("pre-fsync@3", 2),
        // ...half a frame survives...
        ("mid-append@1", 2),
        ("mid-append@5", 2),
        // ...or an exact byte prefix survives (1 byte, mid-header, and deep
        // into the payload).
        ("torn@0:1", 2),
        ("torn@2:9", 2),
        ("torn@4:33", 2),
        // Checkpoint rename crashes: the vectors snapshot, the graph
        // snapshot, the sealing manifest, and the WAL prune, in both the
        // first and a later generation.
        ("rename@0", 2),
        ("rename@1", 2),
        ("rename@2", 2),
        ("rename@3", 2),
        ("rename@6", 2),
        // A mid-append crash when no checkpoint ever sealed: recovery is
        // pure generation-0 + full WAL replay.
        ("mid-append@4", 0),
    ];
    let (vs, lists) = corpus();
    let ops = workload();
    for &(spec, cadence) in specs {
        let label = format!("crash {spec} (checkpoint_every {cadence})");
        let dir = scratch_dir(&spec.replace(['@', ':'], "-"));
        let plan = CrashPlan::parse(spec).unwrap();
        let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
        let engine = ServeEngine::start(index, durable_cfg(&dir, Some(plan), cadence)).unwrap();
        let (acked, crashed) = run_workload(&engine, &ops);
        assert!(crashed, "{label}: the injected crash must fire within the workload");
        assert!(acked < ops.len(), "{label}: a crash must cost at least the dying batch");
        engine.shutdown();

        // Recovery: bounded, lossless, bit-identical to replay-from-scratch.
        let (engine, info) = ServeEngine::recover(durable_cfg(&dir, None, cadence)).unwrap();
        assert_recovered_matches(&engine, acked, &label);
        // The recovered generation g sealed exactly g * cadence ops; every
        // acked op past that point must come back through WAL replay (pruned
        // ops are neither "replayed" nor "skipped" — they live in the
        // checkpoint itself).
        let covered = info.generation * cadence;
        assert_eq!(
            info.replayed_ops,
            acked as u64 - covered,
            "{label}: every acked op past the checkpoint is replayed (generation {})",
            info.generation
        );
        engine.shutdown();

        // The post-recovery directory deep-verifies clean: recovery already
        // repaired the torn tail and fell back past any dead generation...
        // except when the crash orphaned a *partial* generation directory,
        // which fsck rightly reports (recovery ignores it; the next
        // checkpoint overwrites it).
        let report = fsck(&dir);
        let partial_gen_only =
            report.findings.iter().all(|f| f.contains("generation") && !f.contains("wal"));
        assert!(
            report.is_clean() || partial_gen_only,
            "{label}: unexpected fsck findings: {report}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Recovery is idempotent and a recovered engine keeps journaling: cold →
/// crash-free run → warm (replay) → more mutations → warm again. The
/// second recovery must see both the original and the post-recovery
/// batches — the sequence-numbering handoff across a fully pruned WAL is
/// exactly what this guards.
#[test]
fn recover_twice_equals_recover_once_and_keeps_accepting_mutations() {
    let (vs, lists) = corpus();
    let ops = workload();
    let dir = scratch_dir("idempotent");
    // Cadence 3: one sealed checkpoint, three ops live only in the WAL.
    let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
    let engine = ServeEngine::start(index, durable_cfg(&dir, None, 3)).unwrap();
    let (acked, crashed) = run_workload(&engine, &ops);
    assert!(!crashed);
    assert_eq!(acked, ops.len());
    engine.shutdown();

    // First recovery.
    let (engine, info1) = ServeEngine::recover(durable_cfg(&dir, None, 3)).unwrap();
    assert_recovered_matches(&engine, ops.len(), "first recovery");
    engine.shutdown();
    // Second recovery from the untouched directory: identical outcome.
    let (engine, info2) = ServeEngine::recover(durable_cfg(&dir, None, 3)).unwrap();
    assert_recovered_matches(&engine, ops.len(), "second recovery");
    assert_eq!(info1.generation, info2.generation);
    assert_eq!(info1.replayed_ops, info2.replayed_ops);
    assert_eq!(info1.skipped_ops, info2.skipped_ops);

    // The recovered engine journals further mutations correctly: insert one
    // more batch, then recover yet again and expect workload + extra.
    let extra =
        DatasetSpec::Manifold { n: 6, ambient_dim: DIM, intrinsic_dim: 3 }.generate(404).vectors;
    engine
        .insert(extra.clone())
        .unwrap()
        .wait_timeout(Duration::from_secs(30))
        .expect("post-recovery mutation is accepted");
    engine.shutdown();
    let (engine, _) = ServeEngine::recover(durable_cfg(&dir, None, 3)).unwrap();
    let mut all = ops.clone();
    all.push(MutationOp::Insert(extra));
    let (rvs, rlists, rdeleted) = reference_state(&vs, &lists, &all, &MutatePolicy::default());
    let epoch = engine.pin_epoch();
    assert_eq!(epoch.vectors, rvs, "post-recovery batch survived the third recovery");
    assert_eq!(epoch.lists, rlists);
    assert_eq!(epoch.deleted, rdeleted);
    drop(epoch);
    engine.shutdown();
    assert!(fsck(&dir).is_clean(), "{}", fsck(&dir));
    std::fs::remove_dir_all(&dir).ok();
}

/// A newest generation corrupted on disk (bit rot, not a crash) makes
/// recovery fall back to the previous sealed generation, flagged in the
/// `RecoveryInfo` — and `fsck` reports both the dead generation and any
/// WAL coverage gap instead of calling the directory clean.
#[test]
fn corrupt_newest_generation_falls_back_and_fsck_flags_it() {
    let (vs, lists) = corpus();
    let ops = workload();
    let dir = scratch_dir("fallback");
    let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
    let engine = ServeEngine::start(index, durable_cfg(&dir, None, 2)).unwrap();
    let (acked, crashed) = run_workload(&engine, &ops);
    assert!(!crashed);
    assert_eq!(acked, ops.len());
    engine.shutdown();

    let gens = list_generations(&dir);
    assert!(gens.len() >= 2, "want at least two generations, got {gens:?}");
    let newest = *gens.last().unwrap();
    let manifest = dir.join(format!("ckpt-{newest:08}/MANIFEST"));
    let mut bytes = std::fs::read(&manifest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xA5;
    std::fs::write(&manifest, &bytes).unwrap();

    // fsck flags the corruption — this directory is NOT clean.
    let report = fsck(&dir);
    assert!(!report.is_clean(), "seeded manifest corruption must be flagged");
    assert!(
        report.findings.iter().any(|f| f.contains(&format!("{newest}"))),
        "finding names the dead generation: {report}"
    );

    // Recovery still comes up, on the previous generation. The newest
    // checkpoint's prune already dropped the WAL prefix it covered, so the
    // fallback serves that generation's state (bit rot after a sealed
    // checkpoint is beyond the crash-consistency contract — the point is
    // typed fallback + fsck detection, not silence).
    let (engine, info) = ServeEngine::recover(durable_cfg(&dir, None, 2)).unwrap();
    assert!(info.fell_back, "recovery must report the fallback");
    assert_eq!(info.generation, gens[gens.len() - 2]);
    let covered = 2 * info.generation as usize; // cadence 2: gen g seals 2g ops
    let (rvs, rlists, rdeleted) =
        reference_state(&vs, &lists, &ops[..covered], &MutatePolicy::default());
    let epoch = engine.pin_epoch();
    assert_eq!(epoch.vectors, rvs, "fallback serves the previous sealed generation");
    assert_eq!(epoch.lists, rlists);
    assert_eq!(epoch.deleted, rdeleted);
    drop(epoch);
    engine.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `fsck` flags each seeded corruption class: a mangled snapshot payload,
/// a truncated manifest, a torn WAL tail, and a WAL whose covered prefix
/// was pruned but whose manifest was rolled back (lost records).
#[test]
fn fsck_flags_each_seeded_corruption_class() {
    let (vs, lists) = corpus();
    let ops = workload();
    let seed_dir = |name: &str| -> PathBuf {
        let dir = scratch_dir(name);
        let index = ServeIndex::from_parts(vs.clone(), lists.clone()).unwrap();
        let engine = ServeEngine::start(index, durable_cfg(&dir, None, 3)).unwrap();
        let (acked, crashed) = run_workload(&engine, &ops);
        assert!(!crashed);
        assert_eq!(acked, ops.len());
        engine.shutdown();
        assert!(fsck(&dir).is_clean(), "baseline must be clean: {}", fsck(&dir));
        dir
    };
    let newest_file = |dir: &Path, file: &str| -> PathBuf {
        let g = *list_generations(dir).last().unwrap();
        dir.join(format!("ckpt-{g:08}/{file}"))
    };
    let flip_last = |p: &Path| {
        let mut b = std::fs::read(p).unwrap();
        let last = b.len() - 1;
        b[last] ^= 0xFF;
        std::fs::write(p, b).unwrap();
    };

    // Class 1: snapshot payload corruption (graph checksum mismatch).
    let dir = seed_dir("fsck-graph");
    flip_last(&newest_file(&dir, "graph.wkk"));
    assert!(!fsck(&dir).is_clean(), "graph corruption missed");
    std::fs::remove_dir_all(&dir).ok();

    // Class 2: truncated manifest.
    let dir = seed_dir("fsck-manifest");
    let manifest = newest_file(&dir, "MANIFEST");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();
    assert!(!fsck(&dir).is_clean(), "manifest truncation missed");
    std::fs::remove_dir_all(&dir).ok();

    // Class 3: torn WAL tail (reported, though recovery tolerates it).
    let dir = seed_dir("fsck-torn");
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).unwrap();
    bytes.extend_from_slice(&[0x2A; 7]); // 7 junk bytes: an unfinishable frame
    std::fs::write(&wal, &bytes).unwrap();
    let report = fsck(&dir);
    assert!(!report.is_clean(), "torn WAL tail missed");
    assert!(report.findings.iter().any(|f| f.contains("torn")), "{report}");
    std::fs::remove_dir_all(&dir).ok();

    // Class 4: WAL/manifest continuity gap — roll the manifest back to an
    // older generation's (whose WAL prefix the newer checkpoint pruned):
    // the log now starts past the manifest's position, i.e. records the
    // manifest needs are gone.
    let dir = seed_dir("fsck-gap");
    let gens = list_generations(&dir);
    let (old, newest) = (gens[gens.len() - 2], *gens.last().unwrap());
    let old_manifest = dir.join(format!("ckpt-{old:08}/MANIFEST"));
    let new_manifest = dir.join(format!("ckpt-{newest:08}/MANIFEST"));
    std::fs::copy(&old_manifest, &new_manifest).unwrap();
    let report = fsck(&dir);
    assert!(!report.is_clean(), "continuity gap missed: {report}");
    std::fs::remove_dir_all(&dir).ok();
}
