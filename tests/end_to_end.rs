//! Cross-crate integration: every generator × every kernel variant × both
//! backends, with recall floors and determinism.

use wknng::prelude::*;

fn generators(n: usize) -> Vec<DatasetSpec> {
    vec![
        DatasetSpec::GaussianClusters { n, dim: 24, clusters: 6, spread: 0.3 },
        DatasetSpec::UniformCube { n, dim: 8 },
        DatasetSpec::HypersphereShell { n, dim: 16 },
        DatasetSpec::Manifold { n, ambient_dim: 48, intrinsic_dim: 4 },
    ]
}

#[test]
fn native_build_reaches_recall_floor_on_every_generator() {
    for spec in generators(300) {
        let vs = spec.generate(1).vectors;
        let truth = exact_knn(&vs, 8, Metric::SquaredL2);
        let (g, _) = WknngBuilder::new(8)
            .trees(6)
            .leaf_size(24)
            .exploration(1)
            .seed(2)
            .build_native(&vs)
            .expect("valid parameters");
        let r = recall(&g.lists, &truth);
        assert!(r > 0.7, "{}: recall {r:.3}", spec.name());
    }
}

#[test]
fn every_variant_matches_native_on_every_generator() {
    let dev = DeviceConfig::test_tiny();
    for spec in generators(120) {
        let vs = spec.generate(3).vectors;
        let builder = WknngBuilder::new(5).trees(2).leaf_size(12).exploration(1).seed(5);
        let (native, _) = builder.build_native(&vs).expect("valid");
        let nidx: Vec<Vec<u32>> =
            native.lists.iter().map(|l| l.iter().map(|nb| nb.index).collect()).collect();
        for variant in KernelVariant::ALL {
            let (device, reports) =
                builder.variant(variant).build_device(&vs, &dev).expect("valid");
            let didx: Vec<Vec<u32>> =
                device.lists.iter().map(|l| l.iter().map(|nb| nb.index).collect()).collect();
            assert_eq!(didx, nidx, "{} / {:?}", spec.name(), variant);
            assert!(reports.total().cycles > 0.0);
        }
    }
}

#[test]
fn builds_are_deterministic_across_runs() {
    let vs = DatasetSpec::sift_like(200).generate(7).vectors;
    let builder = WknngBuilder::new(6).trees(3).leaf_size(16).exploration(1).seed(11);
    let (a, _) = builder.build_native(&vs).expect("valid");
    let (b, _) = builder.build_native(&vs).expect("valid");
    assert_eq!(a.lists, b.lists);

    let dev = DeviceConfig::test_tiny();
    let (da, ra) = builder.build_device(&vs, &dev).expect("valid");
    let (db, rb) = builder.build_device(&vs, &dev).expect("valid");
    assert_eq!(da.lists, db.lists);
    assert_eq!(ra.total(), rb.total(), "cycle estimates must replay exactly");
}

#[test]
fn device_baselines_are_exact_where_promised() {
    let vs = DatasetSpec::UniformCube { n: 90, dim: 10 }.generate(9).vectors;
    let truth = exact_knn(&vs, 6, Metric::SquaredL2);
    let dev = DeviceConfig::test_tiny();

    let (brute, _) = brute_force_device(&vs, 6, &dev);
    assert_eq!(recall(&brute, &truth), 1.0);

    let ivf = IvfFlat::build(&vs, IvfParams { nlist: 6, ..IvfParams::default() });
    let (full, _) = ivf_knng_device(&vs, &ivf, 6, 6, &dev);
    assert_eq!(recall(&full, &truth), 1.0);
}

#[test]
fn approximate_methods_beat_their_cost_budgets() {
    // The point of the paper: at matched recall, w-KNNG needs fewer cycles
    // than the IVF baseline on the same (simulated) hardware.
    let vs =
        DatasetSpec::Manifold { n: 320, ambient_dim: 64, intrinsic_dim: 5 }.generate(13).vectors;
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let dev = DeviceConfig::scaled_gpu();

    let (g, reports) = WknngBuilder::new(8)
        .trees(4)
        .leaf_size(32)
        .exploration(1)
        .seed(3)
        .build_device(&vs, &dev)
        .expect("valid");
    let our_recall = recall(&g.lists, &truth);
    let our_cycles = reports.total().cycles;

    // Find the cheapest IVF configuration reaching the same recall.
    let ivf = IvfFlat::build(&vs, IvfParams { nlist: 16, ..IvfParams::default() });
    let mut ivf_cycles = None;
    for nprobe in 1..=16usize {
        let (lists, rep) = ivf_knng_device(&vs, &ivf, 8, nprobe, &dev);
        if recall(&lists, &truth) + 0.01 >= our_recall {
            ivf_cycles = Some(rep.cycles);
            break;
        }
    }
    let ivf_cycles = ivf_cycles.expect("IVF reaches the recall with enough probes");
    assert!(
        our_cycles < ivf_cycles,
        "w-KNNG ({our_cycles:.0}) must beat IVF ({ivf_cycles:.0}) at recall {our_recall:.3}"
    );
}

#[test]
fn exploration_and_trees_improve_recall_monotonically_enough() {
    let vs = DatasetSpec::GaussianClusters { n: 400, dim: 16, clusters: 8, spread: 0.3 }
        .generate(17)
        .vectors;
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let base = WknngBuilder::new(8).leaf_size(16).seed(19);
    let r = |trees: usize, explore: usize| {
        let (g, _) = base.trees(trees).exploration(explore).build_native(&vs).expect("valid");
        recall(&g.lists, &truth)
    };
    let r1 = r(1, 0);
    let r4 = r(4, 0);
    let r4e = r(4, 2);
    assert!(r4 > r1, "{r1:.3} -> {r4:.3}");
    assert!(r4e > r4, "{r4:.3} -> {r4e:.3}");
    assert!(r4e > 0.9, "final recall too low: {r4e:.3}");
}
