//! Chaos harness for the serving engine: deterministic fault injection
//! (worker panics, stalled batches, poisoned result channels) plus overload
//! experiments, proving the resilience acceptance criteria:
//!
//! * no ticket wait ever blocks past deadline + grace, under **any** fault;
//! * a killed worker is respawned and the engine returns to full recall
//!   within one backoff window;
//! * under sustained overload, adaptive shedding keeps the p99 of served
//!   queries bounded (≥ 5× lower than the unshedded engine) without
//!   changing the recall of the queries that are served.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use wknng::prelude::*;

/// Shared corpus: 1.2k indexed points, 100 out-of-sample queries, and the
/// sequential reference answers (exact per-query expectation for every
/// recall assertion below).
#[allow(clippy::type_complexity)]
fn corpus() -> &'static (VectorSet, VectorSet, Knng, Vec<Vec<Neighbor>>) {
    static CORPUS: OnceLock<(VectorSet, VectorSet, Knng, Vec<Vec<Neighbor>>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let dim = 12;
        let all = DatasetSpec::Manifold { n: 1300, ambient_dim: dim, intrinsic_dim: 3 }
            .generate(140)
            .vectors;
        let index = VectorSet::new(all.as_flat()[..1200 * dim].to_vec(), dim).unwrap();
        let queries = VectorSet::new(all.as_flat()[1200 * dim..].to_vec(), dim).unwrap();
        let (g, _) = WknngBuilder::new(10)
            .trees(5)
            .leaf_size(32)
            .exploration(2)
            .seed(141)
            .build_native(&index)
            .expect("valid build");
        let reference: Vec<Vec<Neighbor>> = (0..queries.len())
            .map(|q| search(&index, &g, queries.row(q), &SearchParams::default()).0)
            .collect();
        (index, queries, g, reference)
    })
}

fn engine_with(cfg: ServeConfig) -> ServeEngine {
    let (vs, _, g, _) = corpus();
    let index = ServeIndex::from_parts(vs.clone(), g.lists.clone()).unwrap();
    ServeEngine::start(index, cfg).unwrap()
}

#[test]
fn killed_worker_answers_waiters_typed_and_respawns_to_full_recall() {
    let (_, queries, _, reference) = corpus();
    let backoff = Duration::from_millis(200);
    let engine = engine_with(ServeConfig {
        batch_size: 8,
        chaos: Some(FaultPlan::default().panic_batch(0)),
        supervisor: SupervisorPolicy { backoff_initial: backoff, backoff_cap: backoff },
        ..ServeConfig::default()
    });
    // First wave rides the panicking batch: every waiter must resolve to
    // the typed WorkerLost — promptly, not by hanging until some timeout.
    let wave: Vec<_> = (0..8).map(|q| engine.submit(queries.row(q).to_vec()).unwrap()).collect();
    let start = Instant::now();
    for t in wave {
        assert_eq!(t.wait_timeout(Duration::from_secs(10)), Err(ServeError::WorkerLost));
    }
    assert!(start.elapsed() < Duration::from_secs(5), "WorkerLost was prompt");
    // Second wave: the supervisor respawns the shard after one backoff
    // window and the engine is back at full recall — answers identical to
    // the sequential reference.
    let recovery = Instant::now();
    let wave: Vec<_> = (8..20).map(|q| engine.submit(queries.row(q).to_vec()).unwrap()).collect();
    for (q, t) in (8..20).zip(wave) {
        let res = t.wait_timeout(Duration::from_secs(30)).expect("respawned shard serves");
        assert_eq!(res.neighbors, reference[q], "query {q} after respawn");
    }
    assert!(
        recovery.elapsed() < backoff + Duration::from_secs(2),
        "recovered within one backoff window (+ service slack): {:?}",
        recovery.elapsed()
    );
    let report = engine.shutdown();
    assert_eq!(report.worker_restarts, 1, "exactly the injected panic");
    assert_eq!(report.served, 12);
}

#[test]
fn poisoned_result_channel_resolves_worker_lost_without_a_restart() {
    let (_, queries, _, reference) = corpus();
    let engine = engine_with(ServeConfig {
        batch_size: 4,
        chaos: Some(FaultPlan::default().poison_batch(0)),
        ..ServeConfig::default()
    });
    let wave: Vec<_> = (0..4).map(|q| engine.submit(queries.row(q).to_vec()).unwrap()).collect();
    for t in wave {
        // The search ran, but the results never reach the channel: the drop
        // guard answers WorkerLost instead of leaving the waiter hanging.
        assert_eq!(t.wait_timeout(Duration::from_secs(10)), Err(ServeError::WorkerLost));
    }
    let res = engine.query(queries.row(5).to_vec()).expect("poison hits one batch only");
    assert_eq!(res.neighbors, reference[5]);
    let report = engine.shutdown();
    assert_eq!(report.worker_restarts, 0, "poison is not a panic");
    assert_eq!(report.served, 1, "poisoned answers are not served answers");
}

#[test]
fn stalled_batch_cannot_hold_a_deadline_wait_hostage() {
    let (_, queries, _, _) = corpus();
    let deadline = Duration::from_millis(50);
    let stall = Duration::from_secs(2);
    let engine = engine_with(ServeConfig {
        deadline: Some(deadline),
        chaos: Some(FaultPlan::default().stall_batch(0, stall)),
        ..ServeConfig::default()
    });
    let t = engine.submit(queries.row(0).to_vec()).unwrap();
    let start = Instant::now();
    assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
    let waited = start.elapsed();
    assert!(
        waited < deadline + DEADLINE_GRACE + Duration::from_millis(500),
        "wait returned at deadline + grace, not after the {stall:?} stall: {waited:?}"
    );
    assert!(waited < stall, "the stall did not gate the caller");
    let report = engine.shutdown();
    assert_eq!(report.deadline_expired, 1, "expired in queue behind the stall");
    assert_eq!(report.served, 0);
}

#[test]
fn no_wait_blocks_past_deadline_plus_grace_under_any_fault() {
    let (_, queries, _, _) = corpus();
    let deadline = Duration::from_millis(400);
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("panic", FaultPlan::default().panic_batch(0)),
        ("stall", FaultPlan::default().stall_batch(0, Duration::from_secs(2))),
        ("poison", FaultPlan::default().poison_batch(0)),
        (
            "panic+poison+stall",
            FaultPlan::default()
                .panic_batch(0)
                .poison_batch(1)
                .stall_batch(2, Duration::from_secs(1)),
        ),
    ];
    for (name, plan) in plans {
        let engine = engine_with(ServeConfig {
            batch_size: 4,
            deadline: Some(deadline),
            chaos: Some(plan),
            supervisor: SupervisorPolicy {
                backoff_initial: Duration::from_millis(20),
                backoff_cap: Duration::from_millis(20),
            },
            ..ServeConfig::default()
        });
        let wave: Vec<_> =
            (0..12).map(|q| engine.submit(queries.row(q).to_vec()).unwrap()).collect();
        for (q, t) in wave.into_iter().enumerate() {
            let start = Instant::now();
            // Any outcome is legal — served, WorkerLost, DeadlineExceeded —
            // as long as the wait itself is bounded.
            let _ = t.wait();
            let waited = start.elapsed();
            assert!(
                waited < deadline + DEADLINE_GRACE + Duration::from_millis(500),
                "fault '{name}', query {q}: wait blocked for {waited:?}"
            );
        }
        engine.shutdown();
    }
}

/// Burst-submit `n` queries (cycling the query set), wait on every ticket,
/// and return `(report, served results as (query, neighbors))`.
fn overload_run(cfg: ServeConfig, n: usize) -> (ServeReport, Vec<(usize, Vec<Neighbor>)>) {
    let (_, queries, _, _) = corpus();
    let engine = engine_with(cfg);
    let tickets: Vec<_> = (0..n)
        .map(|i| {
            let q = i % queries.len();
            (q, engine.submit(queries.row(q).to_vec()).expect("capacity fits the burst"))
        })
        .collect();
    let mut served = Vec::new();
    for (q, t) in tickets {
        match t.wait() {
            Ok(res) => served.push((q, res.neighbors)),
            Err(ServeError::Shed) => {}
            Err(e) => panic!("unexpected outcome under overload: {e}"),
        }
    }
    (engine.shutdown(), served)
}

#[test]
fn shedding_bounds_p99_under_sustained_overload_without_hurting_served_recall() {
    let (_, _, _, reference) = corpus();
    // 4× the query set, burst-submitted into one shard: the queue stands for
    // the entire drain, which is exactly the sustained-overload regime the
    // controller watches for.
    let n = 4 * corpus().1.len();
    let base = ServeConfig {
        shards: 1,
        batch_size: 8,
        linger: Duration::from_micros(100),
        queue_capacity: 8192,
        ..ServeConfig::default()
    };
    // `brownout_tiers: 0` sheds without ever touching SearchParams, so every
    // query that *is* served must still match the sequential reference.
    let shed_policy = ShedPolicy {
        target: Duration::from_millis(1),
        window: Duration::from_millis(4),
        brownout_tiers: 0,
        shed_factor: 4,
    };
    let (no_shed, _) = overload_run(base.clone(), n);
    let (with_shed, served) = overload_run(ServeConfig { shed: Some(shed_policy), ..base }, n);

    assert_eq!(no_shed.served, n as u64, "without shedding everything drains");
    assert!(with_shed.shed > 0, "the controller engaged");
    assert_eq!(with_shed.served + with_shed.shed, n as u64);
    assert_eq!(with_shed.brownout_batches, 0, "tiers = 0 never degrades params");

    let p99_no_shed = no_shed.latency_p(99.0);
    let p99_shed = with_shed.latency_p(99.0);
    assert!(
        p99_no_shed >= p99_shed * 5,
        "shedding must cut p99 at least 5x: {p99_no_shed:?} vs {p99_shed:?} \
         (served {} / shed {})",
        with_shed.served,
        with_shed.shed
    );
    assert!(!served.is_empty());
    for (q, neighbors) in served {
        assert_eq!(neighbors, reference[q], "served query {q} recall unchanged by shedding");
    }
}

#[test]
fn brownout_narrows_search_before_shedding_and_answers_stay_well_formed() {
    let n = 4 * corpus().1.len();
    let cfg = ServeConfig {
        shards: 1,
        batch_size: 8,
        linger: Duration::from_micros(100),
        queue_capacity: 8192,
        shed: Some(ShedPolicy {
            target: Duration::from_millis(1),
            window: Duration::from_millis(2),
            brownout_tiers: 2,
            shed_factor: 8,
        }),
        ..ServeConfig::default()
    };
    let (report, served) = overload_run(cfg, n);
    assert!(report.brownout_batches > 0, "overload walked the brownout ladder");
    assert!(!served.is_empty());
    let k = SearchParams::default().k;
    for (q, neighbors) in served {
        // Browned-out answers may differ from the full-beam reference, but
        // must still be a well-formed k-NN answer: full length, ascending.
        assert_eq!(neighbors.len(), k, "query {q}");
        for w in neighbors.windows(2) {
            assert!(w[0].dist <= w[1].dist, "query {q}: unsorted answer");
        }
    }
}
