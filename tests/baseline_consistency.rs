//! Baseline consistency: the comparison methods must behave like the systems
//! they stand in for, or the evaluation's conclusions are meaningless.

use wknng::prelude::*;

fn clustered(n: usize, seed: u64) -> VectorSet {
    DatasetSpec::GaussianClusters { n, dim: 12, clusters: 6, spread: 0.25 }.generate(seed).vectors
}

#[test]
fn ivf_recall_is_monotone_in_nprobe() {
    let vs = clustered(300, 1);
    let truth = exact_knn(&vs, 6, Metric::SquaredL2);
    let ivf = IvfFlat::build(&vs, IvfParams { nlist: 18, ..IvfParams::default() });
    let mut prev = -1.0f64;
    for nprobe in [1usize, 2, 4, 9, 18] {
        let r = recall(&ivf.knng(&vs, 6, nprobe), &truth);
        assert!(r + 1e-9 >= prev, "recall regressed at nprobe={nprobe}: {prev:.3} -> {r:.3}");
        prev = r;
    }
    assert_eq!(prev, 1.0, "full probe must be exact");
}

#[test]
fn ivf_device_equals_ivf_native() {
    let vs = clustered(200, 2);
    let ivf = IvfFlat::build(&vs, IvfParams { nlist: 10, ..IvfParams::default() });
    let dev = DeviceConfig::test_tiny();
    for nprobe in [1usize, 3, 10] {
        let native = ivf.knng(&vs, 5, nprobe);
        let (device, _) = ivf_knng_device(&vs, &ivf, 5, nprobe, &dev);
        let ni: Vec<Vec<u32>> =
            native.iter().map(|l| l.iter().map(|n| n.index).collect()).collect();
        let di: Vec<Vec<u32>> =
            device.iter().map(|l| l.iter().map(|n| n.index).collect()).collect();
        assert_eq!(ni, di, "nprobe {nprobe}");
    }
}

#[test]
fn brute_device_equals_exact_oracle() {
    let vs = clustered(150, 3);
    let truth = exact_knn(&vs, 7, Metric::SquaredL2);
    let dev = DeviceConfig::test_tiny();
    let (brute, report) = brute_force_device(&vs, 7, &dev);
    let bi: Vec<Vec<u32>> = brute.iter().map(|l| l.iter().map(|n| n.index).collect()).collect();
    let ti: Vec<Vec<u32>> = truth.iter().map(|l| l.iter().map(|n| n.index).collect()).collect();
    assert_eq!(bi, ti);
    assert!(report.cycles > 0.0);
}

#[test]
fn nn_descent_converges_and_is_deterministic() {
    let vs = clustered(250, 4);
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let params = NnDescentParams { k: 8, ..NnDescentParams::default() };
    let (a, iters_a) = nn_descent(&vs, &params);
    let (b, iters_b) = nn_descent(&vs, &params);
    assert_eq!(a, b);
    assert_eq!(iters_a, iters_b);
    assert!(recall(&a, &truth) > 0.85);
}

#[test]
fn kmeans_quantizer_is_usable_by_ivf() {
    let vs = clustered(240, 5);
    let km = train_kmeans(&vs, 6, 25, 9);
    // Every centroid is finite and assignments are self-consistent.
    assert!(km.centroids.iter().all(|v| v.is_finite()));
    let counts = {
        let mut c = vec![0usize; km.nlist];
        for &a in &km.assignment {
            c[a as usize] += 1;
        }
        c
    };
    assert_eq!(counts.iter().sum::<usize>(), vs.len());
    assert!(counts.iter().all(|&c| c > 0), "no empty clusters after reseeding: {counts:?}");
}

#[test]
fn wknng_beats_nn_descent_or_matches_it_with_less_work() {
    // Not a strict dominance claim — just that the forest approach lands in
    // the same recall league as the classic algorithm on clustered data.
    let vs = clustered(400, 6);
    let truth = exact_knn(&vs, 8, Metric::SquaredL2);
    let (g, _) = WknngBuilder::new(8)
        .trees(6)
        .leaf_size(24)
        .exploration(1)
        .seed(7)
        .build_native(&vs)
        .expect("valid");
    let (nd, _) = nn_descent(&vs, &NnDescentParams { k: 8, ..NnDescentParams::default() });
    let (rw, rn) = (recall(&g.lists, &truth), recall(&nd, &truth));
    assert!(rw > 0.9, "w-KNNG {rw:.3}");
    assert!(rn > 0.85, "nn-descent {rn:.3}");
}
