//! Acceptance suite for the concurrency model checker (`wknng race`).
//!
//! Mirrors the `wknng lint` golden pattern (crates/core/tests/lint.rs):
//!
//! * **Golden report** — the rendered exploration of every serve/epoch
//!   protocol plus the seeded-mutant self-check is pinned byte-for-byte
//!   (with source line numbers normalized) against
//!   `tests/golden/race_report.txt`. A change to a protocol, to the
//!   scheduler's exploration order, or to the detector shows up as a diff
//!   here and must be reviewed. Regenerate intentionally with
//!   `BLESS_RACE=1 cargo test --features race --test race_model`.
//! * **Mutation detection** — each seeded concurrency bug must be flagged
//!   with an expected finding kind carrying the seeded site's marker, which
//!   guards the *checker* the way the golden file guards the protocols.
#![cfg(feature = "race")]

use wknng::serve::race::{race_all_protocols, race_mutants, render_mutants, render_protocols};
use wknng::sync::model::FindingKind;

/// `path/file.rs:123` → `path/file.rs:LL` — line numbers shift on every
/// edit; the site *file* and the finding text are what the golden pins.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == ':' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
            out.push_str("LL");
        }
    }
    out
}

fn rendered() -> String {
    let mut out = render_protocols(&race_all_protocols());
    out.push_str(&render_mutants(&race_mutants()));
    normalize(&out)
}

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/race_report.txt");

#[test]
fn golden_race_report_matches() {
    let got = rendered();
    if std::env::var_os("BLESS_RACE").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing — run with BLESS_RACE=1 to create tests/golden/race_report.txt",
    );
    assert_eq!(
        got, want,
        "race report drifted from the golden file; if the change is intentional, \
         re-bless with BLESS_RACE=1"
    );
}

#[test]
fn all_serve_protocols_explore_clean() {
    for report in race_all_protocols() {
        assert!(
            report.clean(),
            "protocol `{}` produced findings:\n{}",
            report.name,
            render_protocols(std::slice::from_ref(&report))
        );
        assert!(!report.capped, "protocol `{}` hit the schedule cap", report.name);
        assert!(
            report.schedules > 1,
            "protocol `{}` explored a single schedule — no interleavings at all",
            report.name
        );
    }
}

#[test]
fn every_seeded_mutant_is_flagged_at_its_site() {
    let mutants = race_mutants();
    assert!(mutants.len() >= 4, "the self-check must seed at least four mutants");
    for m in &mutants {
        let f = m.caught().unwrap_or_else(|| {
            panic!(
                "mutant `{}` escaped the checker: expected {:?} carrying `{}`\n{}",
                m.name,
                m.expected,
                m.marker,
                render_mutants(std::slice::from_ref(m))
            )
        });
        assert!(m.expected.contains(&f.kind), "mutant `{}` flagged as wrong kind: {f:?}", m.name);
    }
}

#[test]
fn every_detector_class_is_exercised_by_a_mutant() {
    // The self-check demonstrates a *detection* (not just absence of
    // findings) for the weak-ordering and liveness detector classes.
    let mutants = race_mutants();
    let caught: Vec<FindingKind> =
        mutants.iter().filter_map(|m| m.caught()).map(|f| f.kind).collect();
    assert!(caught.contains(&FindingKind::DataRace), "no mutant demonstrated a data race");
    assert!(caught.contains(&FindingKind::LostWakeup), "no mutant demonstrated a lost wakeup");
    assert!(
        caught.iter().any(|k| matches!(k, FindingKind::Deadlock | FindingKind::LockOrderInversion)),
        "no mutant demonstrated a locking-order defect"
    );
}
