//! Offline stand-in for `proptest` exposing the subset this workspace uses.
//!
//! Functional, not cosmetic: the `proptest!` macro really generates random
//! inputs from the strategies and runs every case, `prop_assume!` really
//! rejects, and `prop_assert*!` really fail the test with the formatted
//! message. What is missing relative to the real crate is shrinking (a
//! failing case is reported as-is, not minimized) and persistence
//! (`.proptest-regressions` files are ignored). Seeding is deterministic
//! per test (derived from the test's module path and name), so runs are
//! reproducible.

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seed from a test identifier (FNV-1a), so each test gets its own
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod test_runner {
    /// The subset of proptest's config the workspace sets:
    /// `ProptestConfig::with_cases(n)`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases each test must pass.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — resample, don't count the case.
        Reject(String),
        /// `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values of one type. The real crate separates
    /// strategies from value trees (for shrinking); without shrinking the
    /// trait collapses to a single sampling method.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f` (provided for forward
        /// compatibility; the workspace's tests use plain strategies).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    lo + (rng.next_u64() as u128 % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // The real crate's any::<f32>() covers NaN and infinities; the stub
    // stays finite (no workspace test relies on non-finite samples).
    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.unit_f64() * 2.0 - 1.0) * 1e6) as f32
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }

    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    pub fn uniform32<S: Strategy>(elem: S) -> UniformArrayStrategy<S, 32> {
        UniformArrayStrategy { elem }
    }
}

/// The `prop::` namespace the prelude exposes (`prop::collection::vec`,
/// `prop::array::uniform32`, ...).
pub mod prop {
    pub use crate::{array, collection, strategy};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` == `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` != `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// The test-defining macro. Supports the two forms the workspace writes:
/// with and without a leading `#![proptest_config(...)]` attribute.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let ($($arg,)+) =
                    ($($crate::strategy::Strategy::generate(&($strat), &mut rng),)+);
                let outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        rejected += 1;
                        assert!(
                            rejected < 4096,
                            "{}: too many prop_assume rejections (last: {why})",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest property `{}` failed after {passed} passing case(s): {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let xs = Strategy::generate(&prop::collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
            let arr = Strategy::generate(&prop::array::uniform32(0u32..10), &mut rng);
            assert!(arr.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_rejects(a in 0usize..100, b in 0usize..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a < 100 && b < 100, "bounds: {a} {b}");
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        fn always_fails_inner(x in 15usize..20) {
            prop_assert!(x < 15, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        always_fails_inner();
    }
}
