/root/repo/stubs/criterion/target/debug/deps/criterion-dfbb0e7398545ffb.d: src/lib.rs

/root/repo/stubs/criterion/target/debug/deps/libcriterion-dfbb0e7398545ffb.rlib: src/lib.rs

/root/repo/stubs/criterion/target/debug/deps/libcriterion-dfbb0e7398545ffb.rmeta: src/lib.rs

src/lib.rs:
