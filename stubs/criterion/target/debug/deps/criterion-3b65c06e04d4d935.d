/root/repo/stubs/criterion/target/debug/deps/criterion-3b65c06e04d4d935.d: src/lib.rs

/root/repo/stubs/criterion/target/debug/deps/criterion-3b65c06e04d4d935: src/lib.rs

src/lib.rs:
