//! Offline stand-in for `criterion` exposing the subset this workspace
//! uses: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! It really times the closures (mean wall-clock over a small fixed number
//! of iterations after one warm-up) and prints one line per benchmark, but
//! does no statistics, outlier rejection, or report generation. Good enough
//! to keep `cargo bench` runnable and the bench targets compiling offline.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Iteration driver handed to every benchmark closure.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Run `f` once to warm up, then `iters` timed times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A `name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

fn run_one(group: &str, id: &str, samples: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { iters: samples.max(1), last_ns: 0.0 };
    f(&mut b);
    let label =
        if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {label:<48} {:>14.1} ns/iter", b.last_ns);
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.samples, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.samples, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The top-level benchmark driver.
pub struct Criterion {
    samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup { name: name.into(), samples, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", &id.to_string(), self.samples, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one("", &id.to_string(), self.samples, |b| f(b, input));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_direct_benches_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.sample_size(2).bench_function("direct", |b| b.iter(|| ran += 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| ()));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran >= 3, "warm-up + 2 samples, got {ran}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("name", 8).to_string(), "name/8");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
