//! Offline stand-in for `rand` exposing the subset this workspace uses.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    pub type StdRng = SmallRng;

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_uniform!(usize, u32, u64, i32, i64);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}
impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
