//! Offline stand-in for `rayon`: the parallel-iterator entry points this
//! workspace uses, executed sequentially over std iterators.

pub mod prelude {
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    pub trait IntoParallelRefIterator<'a> {
        type Iter;
        fn par_iter(&'a self) -> Self::Iter;
    }
    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'a> {
        type Iter;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }
    impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator,
    {
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Rayon-only iterator adaptors, mapped onto their std equivalents.
    pub trait ParallelIterator: Iterator + Sized {
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        fn with_min_len(self, _n: usize) -> Self {
            self
        }
    }
    impl<I: Iterator> ParallelIterator for I {}
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}