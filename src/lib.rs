//! # wknng — Warp-centric K-Nearest-Neighbor-Graph construction
//!
//! A from-scratch Rust reproduction of *"Warp-centric K-Nearest Neighbor
//! Graphs construction on GPU"* (Meyer, Pozo, Zola — ICPP 2021 workshops):
//! an all-points approximate K-NNG builder based on Random Projection
//! Forests, with three warp-centric strategies for maintaining k-NN sets in
//! GPU global memory, evaluated against FAISS-style baselines.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`simt`] | deterministic SIMT (GPU) execution simulator + cost model |
//! | [`data`] | vector sets, synthetic datasets, distances, exact ground truth |
//! | [`forest`] | random-projection tree/forest construction |
//! | [`core`] | the w-KNNG algorithm: kernels, backends, builder API, recall |
//! | [`baseline`] | brute force (+WarpSelect), k-means, IVF-Flat (FAISS stand-in), NN-descent, HNSW |
//! | [`serve`] | batched query-serving engine: sharding, admission control, latency metrics |
//! | [`tsne`] | the motivating application: t-SNE over K-NNG affinities |
//! | [`bench`](mod@bench) | experiment registry (e1–e21) + perf-trajectory orchestrator (`wknng bench`) |
//!
//! ## Quickstart
//!
//! ```
//! use wknng::prelude::*;
//!
//! // 1. Points (bring your own, or generate a benchmark set).
//! let vs = DatasetSpec::sift_like(500).generate(42).vectors;
//!
//! // 2. Build the approximate 10-NN graph.
//! let (graph, timings) = WknngBuilder::new(10)
//!     .trees(8)
//!     .leaf_size(32)
//!     .exploration(1)
//!     .build_native(&vs)
//!     .unwrap();
//!
//! // 3. Score it against exact ground truth.
//! let truth = exact_knn(&vs, 10, Metric::SquaredL2);
//! let r = recall(&graph.lists, &truth);
//! assert!(r > 0.9, "recall {r:.3}");
//! assert!(timings.total_ms() >= 0.0);
//! ```
//!
//! ## Simulated-GPU builds
//!
//! ```
//! use wknng::prelude::*;
//!
//! let vs = DatasetSpec::sift_like(300).generate(7).vectors;
//! let dev = DeviceConfig::pascal_like();
//! let (graph, reports) = WknngBuilder::new(8)
//!     .trees(2)
//!     .variant(KernelVariant::Tiled)
//!     .build_device(&vs, &dev)
//!     .unwrap();
//! assert_eq!(graph.len(), 300);
//! println!("simulated: {:.3} ms", reports.total_ms(&dev));
//! ```

pub mod cli;

pub use wknng_baseline as baseline;
pub use wknng_bench as bench;
pub use wknng_core as core;
pub use wknng_data as data;
pub use wknng_forest as forest;
pub use wknng_serve as serve;
pub use wknng_simt as simt;
pub use wknng_sync as sync;
pub use wknng_tsne as tsne;

/// The commonly used names in one import.
pub mod prelude {
    pub use wknng_baseline::{
        brute_force_device, brute_force_warpselect, ivf_knng_device, nn_descent, train_kmeans,
        Hnsw, HnswParams, IvfFlat, IvfParams, NnDescentParams,
    };
    pub use wknng_core::{
        audit_graph, audit_slots, augment_reverse, build_device, build_device_with_policy,
        build_native, extend_graph, graph_stats, lint_all_kernels, lists_to_slots,
        mean_distance_ratio, mutation_reports, recall, repair_list, run_search_batch, search,
        search_batch, search_checked, symmetrize, AuditLevel, AuditReport, BuildEvent, BuildEvents,
        BuildPhase, BuildPolicy, DeviceReports, ExplorationMode, Extended, GraphExtender,
        GraphStats, KernelVariant, Knng, KnngError, PhaseTimings, QuantMode, SearchIndex,
        SearchParams, SearchStats, ViolationKind, WknngBuilder, WknngParams,
    };
    pub use wknng_data::{
        exact_knn, kernel, read_wal, set_kernel_mode, sq_l2, CrashPlan, CrashScope, DataError,
        Dataset, DatasetSpec, DistanceKernel, FsyncPolicy, KernelMode, KernelModeGuard, Metric,
        Neighbor, PqCodebook, PqParams, VectorSet, WalOp, WalWriter,
    };
    pub use wknng_forest::{build_forest, ForestParams, ProjectionKind, RpForest, TreeParams};
    pub use wknng_serve::{
        fsck, list_generations, wal_path, Augment, Backend, DurabilityPolicy, Epoch, EpochHandle,
        FsckReport, MutatePolicy, MutationOp, MutationOutcome, MutationTicket, QueryResult,
        RecoveryInfo, ServeConfig, ServeEngine, ServeError, ServeIndex, ServeReport, ShedPolicy,
        SupervisorPolicy, Ticket, DEADLINE_GRACE,
    };
    #[cfg(feature = "sanitize")]
    pub use wknng_simt::{launch_sanitized, SanitizerScope};
    pub use wknng_simt::{
        DeviceConfig, FaultPlan, FaultScope, Hazard, HazardKind, HazardReport, InjectedFault,
        LaunchFault, LaunchReport, ServeFault, Stats, SwapFault,
    };
    pub use wknng_tsne::{affinities_from_knng, tsne_via_wknng, Embedding, TsneParams};
}
