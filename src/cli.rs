//! Implementation of the `wknng-cli` binary: dataset generation, graph
//! construction, scoring and inspection over the on-disk formats of
//! [`wknng_data::io`].
//!
//! The argument grammar is deliberately tiny (flag–value pairs, no external
//! parser); every subcommand is a plain function so the logic is unit-tested
//! without spawning processes.

use std::collections::HashMap;
use std::path::Path;

use crate::prelude::*;
use wknng_data::io;

/// A parsed command line: subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The subcommand name.
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parse `argv` (without the program name). A flag followed by another
    /// flag (or by nothing) is a boolean switch and stores `"true"`, so
    /// `--strict` and `--strict true` are equivalent.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut it = argv.iter().peekable();
        let command = it.next().ok_or("missing subcommand")?.clone();
        let mut flags = HashMap::new();
        while let Some(f) = it.next() {
            let key = f.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {f}"))?;
            let val = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => "true".to_string(),
            };
            flags.insert(key.to_string(), val);
        }
        Ok(Args { command, flags })
    }

    /// Fetch a flag value parsed as `T`, or the default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        self.get_opt(key).map(|v| v.unwrap_or(default))
    }

    /// Fetch a flag value parsed as `T`, or `None` when absent.
    pub fn get_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.flags.get(key) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Fetch a required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.flags.get(key).map(|s| s.as_str()).ok_or_else(|| format!("--{key} is required"))
    }
}

/// `generate`: write a synthetic dataset to `--out`.
pub fn cmd_generate(args: &Args) -> Result<String, String> {
    let n = args.get("n", 1000usize)?;
    let dim = args.get("dim", 32usize)?;
    let seed = args.get("seed", 42u64)?;
    let kind: String = args.get("kind", "clusters".to_string())?;
    let out = args.require("out")?;
    let spec = match kind.as_str() {
        "clusters" => DatasetSpec::GaussianClusters {
            n,
            dim,
            clusters: args.get("clusters", 8usize)?,
            spread: args.get("spread", 0.25f32)?,
        },
        "uniform" => DatasetSpec::UniformCube { n, dim },
        "sphere" => DatasetSpec::HypersphereShell { n, dim },
        "manifold" => DatasetSpec::Manifold {
            n,
            ambient_dim: dim,
            intrinsic_dim: args.get("intrinsic", 6usize)?,
        },
        other => {
            return Err(format!("unknown --kind '{other}' (clusters|uniform|sphere|manifold)"))
        }
    };
    let ds = spec.generate(seed);
    io::save_vectors(&ds.vectors, Path::new(out)).map_err(|e| e.to_string())?;
    Ok(format!("wrote {} ({} x {}) to {out}", ds.name, n, dim))
}

/// `build`: construct a K-NN graph from `--input`, write it to `--out`.
///
/// Device builds accept a failure policy (`--strict` fails fast on any
/// fault, `--degrade` — the default — retries and falls back) and
/// deterministic fault injection for exercising it: `--fail-launch N`
/// injects one transient failure at fault-aware launch `N`, `--flip-launch N
/// [--flip-bit B]` flips one slot bit after launch `N`.
pub fn cmd_build(args: &Args) -> Result<String, String> {
    let input = args.require("input")?;
    let out = args.require("out")?;
    let k = args.get("k", 10usize)?;
    let seed = args.get("seed", 1u64)?;
    let strict = args.get("strict", false)?;
    if strict && args.get("degrade", false)? {
        return Err("--strict and --degrade are mutually exclusive".into());
    }
    let vs = io::load_vectors(Path::new(input)).map_err(|e| e.to_string())?;
    let quant_name: String = args.get("quant", "f32".to_string())?;
    let quant = match quant_name.as_str() {
        "f32" => QuantMode::None,
        "sq8" => QuantMode::Sq8,
        "pq" => QuantMode::Pq { m: args.get("pq-m", 8usize)? },
        other => return Err(format!("unknown --quant '{other}' (f32|sq8|pq)")),
    };
    let mut builder = WknngBuilder::new(k)
        .trees(args.get("trees", 8usize)?)
        .leaf_size(args.get("leaf", 64usize)?)
        .exploration(args.get("explore", 1usize)?)
        .quant(quant)
        .seed(seed);
    if strict {
        builder = builder.strict();
    }
    let device: String = args.get("device", "native".to_string())?;
    if quant != QuantMode::None && device != "native" {
        return Err("--quant sq8|pq is native-only (the simulated device evaluates f32)".into());
    }
    let (lists, summary) = match device.as_str() {
        "native" => {
            let (g, timings) = builder.build_native(&vs).map_err(|e| e.to_string())?;
            // Per-point footprint of the coordinates the distance loop reads.
            let quant_note = match quant {
                QuantMode::None => String::new(),
                QuantMode::Sq8 => {
                    format!(" [sq8: {} B/point vs {} B/point f32]", vs.dim(), 4 * vs.dim())
                }
                QuantMode::Pq { m } => format!(
                    " [pq m={}: {} B/point vs {} B/point f32]",
                    m.min(vs.dim()),
                    m.min(vs.dim()),
                    4 * vs.dim()
                ),
            };
            (
                g.lists,
                format!(
                    "{:.1} ms native ({}){quant_note}",
                    timings.total_ms(),
                    wknng_data::kernel().name()
                ),
            )
        }
        "sim" => {
            let mut plan = FaultPlan::new(args.get("fault-seed", seed)?);
            if let Some(l) = args.get_opt::<u64>("fail-launch")? {
                plan = plan.fail_launch(l);
            }
            if let Some(l) = args.get_opt::<u64>("flip-launch")? {
                plan = plan.flip_bit(l, args.get("flip-bit", 61u8)?);
            }
            let _scope = (!plan.is_empty()).then(|| FaultScope::install(plan));
            let dev = DeviceConfig::pascal_like();
            let (g, reports, events) = builder
                .auto_variant(vs.dim())
                .build_device_audited(&vs, &dev)
                .map_err(|e| e.to_string())?;
            let profile = wknng_simt::report::summary(&reports.total(), &dev);
            (
                g.lists,
                format!(
                    "{:.3} simulated ms [{}]\n{profile}",
                    reports.total_ms(&dev),
                    events.summary()
                ),
            )
        }
        other => return Err(format!("unknown --device '{other}' (native|sim)")),
    };
    io::save_knn(&lists, Path::new(out)).map_err(|e| e.to_string())?;
    Ok(format!("built {k}-NN graph over {} points in {summary}; wrote {out}", vs.len()))
}

/// `recall`: score `--graph` against exact ground truth of `--input`.
pub fn cmd_recall(args: &Args) -> Result<String, String> {
    let input = args.require("input")?;
    let graph = args.require("graph")?;
    let vs = io::load_vectors(Path::new(input)).map_err(|e| e.to_string())?;
    let lists = io::load_knn(Path::new(graph)).map_err(|e| e.to_string())?;
    if lists.len() != vs.len() {
        return Err(format!("graph covers {} points, dataset has {}", lists.len(), vs.len()));
    }
    let k = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    if k == 0 {
        return Err("graph is empty".into());
    }
    let truth = exact_knn(&vs, k, Metric::SquaredL2);
    Ok(format!("recall@{k} = {:.4}", recall(&lists, &truth)))
}

/// `stats`: structural statistics of a stored graph.
pub fn cmd_stats(args: &Args) -> Result<String, String> {
    let graph = args.require("graph")?;
    let lists = io::load_knn(Path::new(graph)).map_err(|e| e.to_string())?;
    let s = graph_stats(&lists);
    Ok(format!(
        "points {}  edges {}  degree {}..{} (mean {:.2})  components {}  hubness {:.2}  symmetry {:.2}",
        s.n, s.edges, s.min_degree, s.max_degree, s.mean_degree, s.components, s.hubness, s.symmetry
    ))
}

/// `info`: dataset shape and geometry estimates.
pub fn cmd_info(args: &Args) -> Result<String, String> {
    let input = args.require("input")?;
    let vs = io::load_vectors(Path::new(input)).map_err(|e| e.to_string())?;
    let id = wknng_data::intrinsic_dim_mle(&vs, 12, 200.min(vs.len()));
    let nn = wknng_data::mean_nn_distance(&vs, 200.min(vs.len()));
    Ok(format!(
        "{} points x {} dims | intrinsic dim (MLE) {:.1} | mean nn distance {:.4}",
        vs.len(),
        vs.dim(),
        id,
        nn
    ))
}

/// `search`: query a stored graph with one of its own points (smoke query)
/// or the point at `--query <id>` perturbed — prints the neighbor ids.
pub fn cmd_search(args: &Args) -> Result<String, String> {
    let input = args.require("input")?;
    let graph_path = args.require("graph")?;
    let qid = args.get("query", 0usize)?;
    let k = args.get("k", 10usize)?;
    let beam = args.get("beam", 48usize)?;
    let vs = io::load_vectors(Path::new(input)).map_err(|e| e.to_string())?;
    let lists = io::load_knn(Path::new(graph_path)).map_err(|e| e.to_string())?;
    if qid >= vs.len() {
        return Err(format!("--query {qid} out of range (n = {})", vs.len()));
    }
    if lists.len() != vs.len() {
        return Err(format!("graph covers {} points, dataset has {}", lists.len(), vs.len()));
    }
    let graph = Knng { lists, params: WknngBuilder::new(k).params() };
    let params = SearchParams { k, beam, entries: 4, metric: Metric::SquaredL2 };
    let (res, stats) = search(&vs, &graph, vs.row(qid), &params);
    let hits: Vec<String> = res.iter().map(|nb| format!("{}({:.4})", nb.index, nb.dist)).collect();
    Ok(format!(
        "query {qid}: [{}] in {} distance evals / {} expansions",
        hits.join(", "),
        stats.distance_evals,
        stats.expansions
    ))
}

/// `extend`: add the points of `--new` to a stored dataset + graph pair.
pub fn cmd_extend(args: &Args) -> Result<String, String> {
    let input = args.require("input")?;
    let graph_path = args.require("graph")?;
    let new_path = args.require("new")?;
    let out_vecs = args.require("out-vectors")?;
    let out_graph = args.require("out-graph")?;
    let vs = io::load_vectors(Path::new(input)).map_err(|e| e.to_string())?;
    let lists = io::load_knn(Path::new(graph_path)).map_err(|e| e.to_string())?;
    let new = io::load_vectors(Path::new(new_path)).map_err(|e| e.to_string())?;
    let k = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    if k == 0 {
        return Err("graph is empty".into());
    }
    let graph = Knng { lists, params: WknngBuilder::new(k).params() };
    let ext =
        extend_graph(&vs, &graph, &new, args.get("beam", 0usize)?).map_err(|e| e.to_string())?;
    io::save_vectors(&ext.vectors, Path::new(out_vecs)).map_err(|e| e.to_string())?;
    io::save_knn(&ext.graph.lists, Path::new(out_graph)).map_err(|e| e.to_string())?;
    Ok(format!("extended {} + {} points -> {out_vecs}, {out_graph}", vs.len(), new.len()))
}

/// `audit`: check a stored graph's structural invariants. With `--input`
/// the stored distances are also verified against a recomputation.
pub fn cmd_audit(args: &Args) -> Result<String, String> {
    let graph = args.require("graph")?;
    let lists = io::load_knn(Path::new(graph)).map_err(|e| e.to_string())?;
    let k = lists.iter().map(|l| l.len()).max().unwrap_or(0);
    let report = match args.get_opt::<String>("input")? {
        None => audit_graph(&lists, lists.len(), k),
        Some(input) => {
            let vs = io::load_vectors(Path::new(&input)).map_err(|e| e.to_string())?;
            if lists.len() != vs.len() {
                return Err(format!(
                    "graph covers {} points, dataset has {}",
                    lists.len(),
                    vs.len()
                ));
            }
            let slots = lists_to_slots(&lists, k);
            audit_slots(&slots, &vs, k, Metric::SquaredL2)
        }
    };
    let corrupted = report.corrupted_points();
    let verdict = if corrupted.is_empty() { "OK" } else { "CORRUPT" };
    Ok(format!(
        "{verdict}: {} points, {} findings ({} corruption-class, {} corrupted points)",
        lists.len(),
        report.total(),
        report.corruption_count(),
        corrupted.len()
    ))
}

/// `serve`: replay a query file through the batching engine and print the
/// drain report.
///
/// Queries are admitted through the bounded queue exactly like live
/// traffic; an `Overloaded` rejection makes the replayer back off briefly
/// and resubmit (counted in the report's `rejected`). With the resilience
/// flags — `--deadline-ms`, `--shed`, `--chaos` — individual queries may
/// legitimately come back shed, expired, or worker-lost; the replayer counts
/// those outcomes instead of failing, mirroring a real client's retry
/// budget.
///
/// With `--mutate` the engine starts its build-aside mutator; `--insert
/// more.wkv` then inserts those points in batches *while the replay is in
/// flight*, publishing new epochs under traffic. `--assert-recall R`
/// re-searches every query against the final epoch after the drain and
/// fails unless recall@k against exact ground truth over the live points is
/// at least `R` — the CI smoke gate for mutation quality.
///
/// `--snapshot-out <base>` writes the finally published epoch — compacted
/// to its live points — through the checksummed v2 writers as `<base>.wkv`
/// and `<base>.wkk`, so a post-mutation index can be served again or fed
/// to `recall`/`audit`.
///
/// `--data-dir <dir>` makes the engine durable (implies `--mutate`): every
/// acknowledged mutation is journaled to a write-ahead log before its
/// ticket resolves, and published epochs are checkpointed every
/// `--checkpoint-every` batches (`--fsync always|never`,
/// `--keep-checkpoints N`). A directory that already holds durable state
/// *warm-starts* — `--input`/`--graph` are then optional, the index comes
/// from the newest valid checkpoint plus WAL replay. `--crash <spec>`
/// (e.g. `pre-fsync@2,torn@5:9,rename@0`) arms deterministic crash
/// injection on the mutator thread for recovery drills.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let queries_path = args.require("queries")?;
    let data_dir = args.get_opt::<String>("data-dir")?;
    // A data dir that already holds checkpoints warm-starts; a fresh (or
    // absent) one is a cold start and needs the index files.
    let warm = data_dir.as_deref().is_some_and(|d| !list_generations(Path::new(d)).is_empty());
    let index = if warm {
        None
    } else {
        let input = args.require("input")?;
        let graph_path = args.require("graph")?;
        Some(ServeIndex::load(Path::new(input), Path::new(graph_path)).map_err(|e| e.to_string())?)
    };
    let queries = io::load_vectors(Path::new(queries_path)).map_err(|e| e.to_string())?;
    if let Some(index) = &index {
        if queries.dim() != index.vectors.dim() {
            return Err(format!(
                "queries are {}-dimensional, index is {}-dimensional",
                queries.dim(),
                index.vectors.dim()
            ));
        }
    }
    let device: String = args.get("device", "native".to_string())?;
    let backend = match device.as_str() {
        "native" => Backend::Native,
        "sim" => Backend::Device(DeviceConfig::pascal_like()),
        other => return Err(format!("unknown --device '{other}' (native|sim)")),
    };
    let chaos = match args.get_opt::<String>("chaos")? {
        None => None,
        Some(spec) => Some(FaultPlan::parse_serve(&spec).map_err(|e| format!("--chaos: {e}"))?),
    };
    let chaos_armed = chaos.is_some();
    let durability = match &data_dir {
        None => None,
        Some(d) => {
            let fsync_name: String = args.get("fsync", "always".to_string())?;
            let fsync = FsyncPolicy::parse(&fsync_name).map_err(|e| format!("--fsync: {e}"))?;
            let crash = match args.get_opt::<String>("crash")? {
                None => None,
                Some(spec) => Some(CrashPlan::parse(&spec).map_err(|e| format!("--crash: {e}"))?),
            };
            Some(DurabilityPolicy {
                fsync,
                checkpoint_every: args.get("checkpoint-every", 64u64)?,
                keep_generations: args.get("keep-checkpoints", 2usize)?,
                crash,
                ..DurabilityPolicy::at(Path::new(d))
            })
        }
    };
    let crash_armed = durability.as_ref().is_some_and(|d| d.crash.is_some());
    // A durable engine needs the mutator thread (it owns the WAL), so
    // --data-dir implies --mutate.
    let mutate_on = args.get("mutate", false)? || durability.is_some();
    let inserts = match args.get_opt::<String>("insert")? {
        None => None,
        Some(p) => {
            if !mutate_on {
                return Err("--insert requires --mutate".to_string());
            }
            let more = io::load_vectors(Path::new(&p)).map_err(|e| e.to_string())?;
            if more.dim() != queries.dim() {
                return Err(format!(
                    "--insert points are {}-dimensional, index is {}-dimensional",
                    more.dim(),
                    queries.dim()
                ));
            }
            Some(more)
        }
    };
    let assert_recall = args.get_opt::<f64>("assert-recall")?;
    let refine_rounds = args.get("refine", MutatePolicy::default().refine_rounds)?;
    let cfg = ServeConfig {
        shards: args.get("shards", 1usize)?,
        batch_size: args.get("batch", 32usize)?,
        linger: std::time::Duration::from_micros(args.get("linger-us", 500u64)?),
        queue_capacity: args.get("capacity", 1024usize)?,
        params: SearchParams {
            k: args.get("k", 10usize)?,
            beam: args.get("beam", 48usize)?,
            entries: args.get("entries", 2usize)?,
            metric: Metric::SquaredL2,
        },
        augment: if args.get("augment", false)? {
            Augment::On { max_degree: args.get_opt::<usize>("max-degree")? }
        } else {
            Augment::Off
        },
        backend,
        deadline: args.get_opt::<u64>("deadline-ms")?.map(std::time::Duration::from_millis),
        shed: args.get("shed", false)?.then(ShedPolicy::default),
        supervisor: SupervisorPolicy::default(),
        chaos,
        mutate: mutate_on.then(|| MutatePolicy { refine_rounds, ..MutatePolicy::default() }),
        durability,
    };
    let (engine, recovery) = match index {
        Some(index) => (ServeEngine::start(index, cfg).map_err(|e| e.to_string())?, None),
        None => {
            let (engine, info) = ServeEngine::recover(cfg).map_err(|e| e.to_string())?;
            (engine, Some(info))
        }
    };
    if queries.dim() != engine.dim() {
        return Err(format!(
            "queries are {}-dimensional, index is {}-dimensional",
            queries.dim(),
            engine.dim()
        ));
    }
    let submit = |q: usize, tickets: &mut Vec<Ticket>| -> Result<(), String> {
        loop {
            match engine.submit(queries.row(q).to_vec()) {
                Ok(t) => {
                    tickets.push(t);
                    break Ok(());
                }
                Err(ServeError::Overloaded { .. }) => {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Err(e) => break Err(e.to_string()),
            }
        }
    };
    let mut tickets = Vec::with_capacity(queries.len());
    // First half of the replay goes in before any mutation, so the insert
    // batches below land under live traffic.
    let split = if inserts.is_some() { queries.len() / 2 } else { queries.len() };
    for q in 0..split {
        submit(q, &mut tickets)?;
    }
    let mut mutation_tickets = Vec::new();
    let mut inserted = 0usize;
    if let Some(more) = &inserts {
        // Several batches, interleaved with the rest of the replay, so
        // multiple epochs publish while queries are in flight.
        let batches = 4usize.min(more.len().max(1));
        let per = more.len().div_ceil(batches);
        for chunk in (0..more.len()).collect::<Vec<_>>().chunks(per.max(1)) {
            let rows: Vec<Vec<f32>> = chunk.iter().map(|&i| more.row(i).to_vec()).collect();
            let batch = VectorSet::from_rows(&rows).map_err(|e| e.to_string())?;
            let len = batch.len();
            mutation_tickets.push((engine.insert(batch).map_err(|e| e.to_string())?, len));
        }
    }
    for q in split..queries.len() {
        submit(q, &mut tickets)?;
    }
    let (mut answered, mut degraded) = (0usize, 0usize);
    for t in tickets {
        match t.wait() {
            Ok(_) => answered += 1,
            Err(ServeError::Shed | ServeError::DeadlineExceeded | ServeError::WorkerLost) => {
                degraded += 1
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    let mut refused = 0usize;
    for (t, len) in mutation_tickets {
        match t.wait() {
            // Only acknowledged batches count as inserted: under an injected
            // crash the refused tail was never applied, and the printed count
            // must match what recovery will serve.
            Ok(_) => inserted += len,
            Err(ServeError::MutationFailed(_)) if chaos_armed || crash_armed => refused += 1,
            // An injected crash kills the mutator mid-journal: the un-acked
            // batches come back typed, never silently applied.
            Err(ServeError::WalFailed(_)) if crash_armed => refused += 1,
            Err(e) => return Err(format!("mutation batch failed: {e}")),
        }
    }
    // Pin the final epoch before the drain: it is a pure snapshot, valid
    // after the engine is gone.
    let last = engine.pin_epoch();
    let report = engine.shutdown();
    let mut out = String::new();
    if let Some(info) = &recovery {
        out.push_str(&format!("{info}\n"));
    }
    out.push_str(&format!("replayed {answered} queries ({degraded} degraded)"));
    if mutate_on {
        out.push_str(&format!(", inserted {inserted} points ({refused} batches refused)"));
    }
    out.push('\n');
    if let Some(bound) = assert_recall {
        let k = args.get("k", 10usize)?.min(last.live_len()).max(1);
        let eval = SearchParams {
            k,
            beam: args.get("beam", 48usize)?.max(k),
            entries: args.get("entries", 2usize)?,
            metric: Metric::SquaredL2,
        };
        let r = epoch_recall(&last, &queries, &eval);
        out.push_str(&format!("final-epoch recall@{k} {r:.3}\n"));
        if r < bound {
            return Err(format!("recall@{k} {r:.3} is below the asserted bound {bound}"));
        }
    }
    if let Some(base) = args.get_opt::<String>("snapshot-out")? {
        // Compact the published epoch (tombstones dropped, slots renumbered)
        // and write it through the checksummed v2 writers, so the snapshot
        // loads back with `--input <base>.wkv --graph <base>.wkk`.
        let (vs, lists) = last.compact_parts();
        io::save_vectors(&vs, Path::new(&format!("{base}.wkv"))).map_err(|e| e.to_string())?;
        io::save_knn(&lists, Path::new(&format!("{base}.wkk"))).map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "snapshot: epoch {} ({} live points) -> {base}.wkv, {base}.wkk\n",
            last.id,
            last.live_len()
        ));
    }
    out.push_str(&report.to_string());
    Ok(out)
}

/// Recall@k of the final epoch's answers against exact ground truth over
/// its live points, evaluated with the serving search parameters — the
/// pure-function check behind `--assert-recall`.
fn epoch_recall(epoch: &crate::serve::Epoch, queries: &VectorSet, params: &SearchParams) -> f64 {
    let k = params.k;
    let (mut hits, mut total) = (0usize, 0usize);
    for q in 0..queries.len() {
        let query = queries.row(q);
        let (got, _) = epoch.search(query, params);
        let mut exact: Vec<(f32, u32)> = (0..epoch.len())
            .filter(|&i| !epoch.deleted[i])
            .map(|i| (sq_l2(query, epoch.vectors.row(i)), i as u32))
            .collect();
        exact.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        exact.truncate(k);
        hits += got.iter().filter(|nb| exact.iter().any(|&(_, i)| i == nb.index)).count();
        total += k;
    }
    if total == 0 {
        return 1.0;
    }
    hits as f64 / total as f64
}

/// `fsck`: deep-verify a durable data directory — every checkpoint
/// generation's checksums, shapes, and graph-slot invariants, plus the
/// WAL's torn-tail state and its sequence continuity against the newest
/// valid manifest. A clean directory prints the report and exits zero; any
/// finding is an error (nonzero exit), with every finding listed.
pub fn cmd_fsck(args: &Args) -> Result<String, String> {
    let dir = args.require("dir")?;
    let report = fsck(Path::new(dir));
    let rendered = report.to_string();
    if report.is_clean() {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

/// `sanitize`: sweep the four device kernels (basic / atomic / tiled / beam)
/// across a small parameter grid under the race & hazard sanitizer, then run
/// a deliberately racy self-check kernel to prove the detector is armed.
/// Any hazard in the sweep — or a silent self-check — is an error.
#[cfg(feature = "sanitize")]
pub fn cmd_sanitize(args: &Args) -> Result<String, String> {
    use crate::simt::{launch_sanitized, DeviceBuffer, Mask, SanitizerScope};

    let seed: u64 = args.get("seed", 0xA11CE)?;
    let dev = DeviceConfig::test_tiny();
    let mut out = String::new();
    let mut dirty: Vec<String> = Vec::new();
    let mut configs = 0usize;
    // The grid is small but adversarial: dim 33 forces the >32-dim chunked
    // paths (tiled's multi-chunk shared staging), k 8 exercises multi-slot
    // scans, and two sizes vary bucket occupancy.
    for &n in &[96usize, 192] {
        for &dim in &[8usize, 33] {
            for &k in &[4usize, 8] {
                let vs = DatasetSpec::GaussianClusters { n, dim, clusters: 4, spread: 0.4 }
                    .generate(seed)
                    .vectors;
                let mut basic_lists = Vec::new();
                for v in KernelVariant::ALL {
                    let scope = SanitizerScope::install();
                    let built = WknngBuilder::new(k)
                        .trees(2)
                        .leaf_size(24)
                        .exploration(1)
                        .seed(seed)
                        .variant(v)
                        .build_device(&vs, &dev);
                    let report = scope.report();
                    drop(scope);
                    let (graph, _) = built.map_err(|e| e.to_string())?;
                    let name = format!("{v:?}").to_lowercase();
                    configs += 1;
                    out.push_str(&format!(
                        "{name:<6} n={n:<4} dim={dim:<2} k={k}: {}\n",
                        report.summary()
                    ));
                    if !report.is_clean() {
                        dirty.push(format!("{name} n={n} dim={dim} k={k}"));
                    }
                    if matches!(v, KernelVariant::Basic) {
                        basic_lists = graph.lists;
                    }
                }
                // Beam search over the basic-built graph, fresh query set.
                let queries = DatasetSpec::UniformCube { n: 16, dim }.generate(seed ^ 1).vectors;
                let params =
                    SearchParams { k: k.min(4), beam: 16, entries: 2, metric: Metric::SquaredL2 };
                let scope = SanitizerScope::install();
                let ix = SearchIndex::upload(&vs, &basic_lists);
                let searched = run_search_batch(&dev, &ix, &queries, &params);
                let report = scope.report();
                drop(scope);
                searched.map_err(|e| format!("beam search launch fault: {e:?}"))?;
                configs += 1;
                out.push_str(&format!(
                    "beam   n={n:<4} dim={dim:<2} k={k}: {}\n",
                    report.summary()
                ));
                if !report.is_clean() {
                    dirty.push(format!("beam n={n} dim={dim} k={k}"));
                }
            }
        }
    }

    // Self-check: a deliberately racy kernel (two blocks, unsynchronized
    // writes of different values to element 0) MUST be detected, or the
    // clean sweep above proves nothing.
    let racy = DeviceBuffer::<u32>::zeroed(8).set_label("self-check");
    let (_, hz) = launch_sanitized(&dev, 2, 1, |blk| {
        let who = blk.block_idx as u32;
        blk.each_warp(|w| {
            let m = Mask(1 << 0);
            let idx = w.math_idx(m, |_| 0);
            let vals = w.math(m, |_| who);
            w.st_global(&racy, &idx, &vals, m);
        });
    });
    if !hz.hazards.iter().any(|h| h.kind == HazardKind::RaceWriteWrite) {
        return Err(format!(
            "sanitizer self-check FAILED: an intentionally racy kernel was not detected\n{out}"
        ));
    }
    out.push_str("self-check: intentional race detected (detector armed)\n");

    if dirty.is_empty() {
        out.push_str(&format!("sanitize: {configs} kernel configs clean"));
        Ok(out)
    } else {
        Err(format!("{out}sanitize: hazards in {} config(s): {}", dirty.len(), dirty.join(", ")))
    }
}

/// Stub when the detector is compiled out: point at the opt-in feature.
#[cfg(not(feature = "sanitize"))]
pub fn cmd_sanitize(_args: &Args) -> Result<String, String> {
    Err("the race & hazard sanitizer is compiled out; rebuild with `--features sanitize` \
         to enable `wknng sanitize`"
        .to_string())
}

/// `race`: model-check the serve/epoch concurrency protocols. Every
/// `wknng_sync` primitive the real serve code touches becomes a scheduling
/// point; the explorer enumerates thread interleavings up to the preemption
/// bound and runs a vector-clock happens-before detector over each explored
/// schedule. Any finding — data race, deadlock, lost wakeup, lock-order
/// inversion, violated invariant — is an error. `--self-check` runs the
/// seeded concurrency mutants instead and fails unless every one is flagged
/// at its seeded site (detector armed).
#[cfg(feature = "race")]
pub fn cmd_race(args: &Args) -> Result<String, String> {
    use crate::serve::race;

    let self_check: bool = args.get("self-check", false)?;
    if self_check {
        let mutants = race::race_mutants();
        let out = race::render_mutants(&mutants);
        let missed: Vec<&str> =
            mutants.iter().filter(|m| m.caught().is_none()).map(|m| m.name).collect();
        if missed.is_empty() {
            Ok(format!(
                "{out}race self-check: {} seeded mutants flagged (detector armed)",
                mutants.len()
            ))
        } else {
            Err(format!(
                "{out}race self-check FAILED: {} mutant(s) escaped: {}",
                missed.len(),
                missed.join(", ")
            ))
        }
    } else {
        let reports = race::race_all_protocols();
        let out = race::render_protocols(&reports);
        let dirty: Vec<&str> = reports.iter().filter(|r| !r.clean()).map(|r| r.name).collect();
        let schedules: u64 = reports.iter().map(|r| r.schedules).sum();
        if dirty.is_empty() {
            Ok(format!(
                "{out}race: {} protocols clean across {schedules} explored schedules",
                reports.len()
            ))
        } else {
            Err(format!("{out}race: findings in {} protocol(s): {}", dirty.len(), dirty.join(", ")))
        }
    }
}

/// Stub when the model checker is compiled out: point at the opt-in feature.
#[cfg(not(feature = "race"))]
pub fn cmd_race(_args: &Args) -> Result<String, String> {
    Err("the concurrency model checker is compiled out; rebuild with `--features race` \
         to enable `wknng race`"
        .to_string())
}

/// `bench`: the perf-trajectory orchestrator (see DESIGN.md § Benchmark
/// orchestrator).
///
/// Four modes, checked in order:
///
/// * `--list` — print the experiment registry (e1–e21) and the pinned
///   suite jobs.
/// * `--only e3,e17 [--quick]` — run registry experiments and print their
///   reports (the `reproduce` binary behind one CLI).
/// * `--compare old.json [--against new.json] [--strict] [--json]` — diff
///   a stored baseline against `--against` (or against a fresh suite run at
///   the baseline's profile and repeats). A gated regression makes the
///   command *fail* with the rendered report, so CI gets a nonzero exit.
/// * default — run the pinned suite (`--profile ci|full|smoke`, `--repeats
///   N`, `--jobs a,b`) and persist a schema-versioned trajectory point to
///   `--out` (default `BENCH_<date>.json`).
pub fn cmd_bench(args: &Args) -> Result<String, String> {
    use crate::bench::diff::DiffReport;
    use crate::bench::experiments::{self, Scale};
    use crate::bench::runner::{render_snapshot, run_suite, RunConfig};
    use crate::bench::snapshot::Snapshot;
    use crate::bench::suite::{Profile, SUITE};

    if args.get("list", false)? {
        let mut out = String::from("experiments (wknng bench --only <ids> [--quick]):\n");
        for e in experiments::REGISTRY {
            out.push_str(&format!(
                "  {:<4} {:<58} sweeps: {:<28} emits: {}\n",
                e.id,
                e.title,
                e.params,
                e.metrics.join(", ")
            ));
        }
        out.push_str("\nsuite jobs (wknng bench [--jobs <ids>]):\n");
        for j in SUITE {
            let metrics: Vec<&str> = j.metrics.iter().map(|m| m.name).collect();
            out.push_str(&format!(
                "  {:<15} {:<42} emits: {}\n",
                j.id,
                j.title,
                metrics.join(", ")
            ));
        }
        return Ok(out);
    }

    if let Some(only) = args.get_opt::<String>("only")? {
        let scale = Scale { quick: args.get("quick", false)? };
        let mut out = String::new();
        for id in only.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match experiments::run(id, scale) {
                Some(report) => out.push_str(&report),
                None => {
                    return Err(format!(
                        "unknown experiment id '{id}' (known: {})",
                        experiments::all_ids().join(", ")
                    ))
                }
            }
        }
        return Ok(out);
    }

    if let Some(base_path) = args.get_opt::<String>("compare")? {
        let baseline = Snapshot::load(Path::new(&base_path))?;
        let fresh = match args.get_opt::<String>("against")? {
            Some(p) => Snapshot::load(Path::new(&p))?,
            None => {
                // Re-measure under the baseline's own regimen so the bands
                // mean the same thing on both sides.
                let profile = Profile::from_name(&baseline.profile)?;
                let cfg = RunConfig {
                    repeats: baseline.repeats,
                    progress: Some(|id| eprintln!("bench: running {id}...")),
                    ..RunConfig::of(profile)
                };
                run_suite(&cfg)?
            }
        };
        let report = DiffReport::compare(&baseline, &fresh, args.get("strict", false)?);
        let rendered =
            if args.get("json", false)? { report.render_json() } else { report.render_table() };
        // A gated regression is an *error*: the CLI exits nonzero and CI
        // fails the trajectory gate.
        return if report.is_blocking() { Err(rendered) } else { Ok(rendered) };
    }

    let profile = Profile::from_name(&args.get("profile", "ci".to_string())?)?;
    let mut cfg = RunConfig {
        progress: Some(|id| eprintln!("bench: running {id}...")),
        ..RunConfig::of(profile)
    };
    if let Some(r) = args.get_opt::<usize>("repeats")? {
        cfg.repeats = r;
    }
    if let Some(jobs) = args.get_opt::<String>("jobs")? {
        cfg.jobs =
            Some(jobs.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect());
    }
    let snap = run_suite(&cfg)?;
    let path = args.get_opt::<String>("out")?.unwrap_or_else(|| snap.default_filename());
    snap.save(Path::new(&path))?;
    Ok(format!("{}wrote {path}", render_snapshot(&snap)))
}

/// `lint`: run the symbolic analyzer over every shipped kernel — proving
/// coalescing, bank-conflict-freedom, bounds and barrier uniformity for
/// *all* launch shapes in the declared parameter ranges, not a concrete
/// sweep. Any unproven obligation is an error. With `--self-check`, also
/// analyze the four deliberately broken mutation kernels and require each to
/// be flagged with exactly one unproven obligation (prover armed).
pub fn cmd_lint(args: &Args) -> Result<String, String> {
    let self_check: bool = args.get("self-check", false)?;
    let verbose: bool = args.get("verbose", false)?;
    let mut out = String::new();
    let mut bad: Vec<String> = Vec::new();
    let mut total = 0usize;
    for report in lint_all_kernels() {
        total += report.obligations.len();
        if verbose || !report.all_proved() {
            out.push_str(&report.render());
        } else {
            let n = report.obligations.len();
            out.push_str(&format!("kernel `{}`: {n}/{n} obligations proved\n", report.kernel));
        }
        for o in report.unproven() {
            let buf = o.buffer.map(|b| format!(" [{b}]")).unwrap_or_default();
            bad.push(format!("{}: {} at `{}`{buf}", report.kernel, o.class, o.site));
        }
    }
    if self_check {
        for report in mutation_reports() {
            let unproven = report.unproven();
            if unproven.len() != 1 {
                return Err(format!(
                    "lint self-check FAILED: `{}` has {} unproven obligations, expected \
                     exactly the seeded one\n{}",
                    report.kernel,
                    unproven.len(),
                    report.render()
                ));
            }
            let o = unproven[0];
            out.push_str(&format!(
                "self-check `{}`: seeded {} violation flagged at `{}`\n",
                report.kernel, o.class, o.site
            ));
        }
    }
    if bad.is_empty() {
        out.push_str(&format!(
            "lint: {total} obligations proved across all shipped kernels, all launch shapes"
        ));
        Ok(out)
    } else {
        Err(format!("{out}lint: {} unproven obligation(s): {}", bad.len(), bad.join("; ")))
    }
}

/// Dispatch a parsed command; returns the report line(s) for stdout.
pub fn dispatch(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "generate" => cmd_generate(args),
        "build" => cmd_build(args),
        "recall" => cmd_recall(args),
        "stats" => cmd_stats(args),
        "info" => cmd_info(args),
        "search" => cmd_search(args),
        "serve" => cmd_serve(args),
        "fsck" => cmd_fsck(args),
        "extend" => cmd_extend(args),
        "audit" => cmd_audit(args),
        "bench" => cmd_bench(args),
        "sanitize" => cmd_sanitize(args),
        "race" => cmd_race(args),
        "lint" => cmd_lint(args),
        "help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
wknng-cli — approximate K-NN graphs from the command line

  generate --out d.wkv [--kind clusters|uniform|sphere|manifold] [--n 1000]
           [--dim 32] [--clusters 8] [--spread 0.25] [--intrinsic 6] [--seed 42]
  build    --input d.wkv --out g.wkk [--k 10] [--trees 8] [--leaf 64]
           [--explore 1] [--seed 1] [--device native|sim]
           [--quant f32|sq8|pq [--pq-m 8]]   (quantized builds are native-only)
           [--strict | --degrade] [--fault-seed S] [--fail-launch N]
           [--flip-launch N] [--flip-bit 61]
  recall   --input d.wkv --graph g.wkk
  stats    --graph g.wkk
  info     --input d.wkv
  audit    --graph g.wkk [--input d.wkv]
  search   --input d.wkv --graph g.wkk [--query 0] [--k 10] [--beam 48]
  serve    --input d.wkv --graph g.wkk --queries q.wkv [--k 10] [--beam 48]
           [--entries 2] [--shards 1] [--batch 32] [--linger-us 500]
           [--capacity 1024] [--augment [--max-degree D]] [--device native|sim]
           [--deadline-ms 50] [--shed] [--chaos panic@1,stall@3:20ms,poison@5]
           [--chaos rebuild-panic@0,rebuild-stall@1:20ms,publish-poison@2]
           [--mutate [--refine 2] [--insert more.wkv] [--assert-recall 0.9]]
           [--snapshot-out base]   (writes base.wkv + base.wkk)
           [--data-dir dir [--fsync always|never] [--checkpoint-every 64]
            [--keep-checkpoints 2] [--crash pre-fsync@2,torn@5:9,rename@0]]
           (--data-dir implies --mutate; a dir with checkpoints warm-starts
            and makes --input/--graph optional)
  fsck     --dir dir   (deep-verify a durable data dir; nonzero on findings)
  extend   --input d.wkv --graph g.wkk --new more.wkv
           --out-vectors d2.wkv --out-graph g2.wkk [--beam 0]
  bench    [--profile ci|full|smoke] [--repeats N] [--jobs a,b] [--out p.json]
  bench    --compare old.json [--against new.json] [--strict] [--json]
  bench    --list | --only e3,e17 [--quick]
  sanitize [--seed S]   (requires building with --features sanitize)
  race     [--self-check]   (requires building with --features race)
  lint     [--verbose] [--self-check]   (symbolic proofs for all launch shapes)
  help";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> Args {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        Args::parse(&argv).expect("parse")
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-cli-test-{name}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn parse_flags_and_defaults() {
        let a = args("build --input x.wkv --out y.wkk --k 7");
        assert_eq!(a.command, "build");
        assert_eq!(a.require("input").unwrap(), "x.wkv");
        assert_eq!(a.get("k", 10usize).unwrap(), 7);
        assert_eq!(a.get("trees", 8usize).unwrap(), 8);
        assert_eq!(a.get_opt::<usize>("trees").unwrap(), None);
        assert!(a.require("missing").is_err());
        assert!(Args::parse(&[]).is_err());
        assert!(Args::parse(&["x".into(), "notaflag".into()]).is_err());
    }

    #[test]
    fn lint_proves_shipped_kernels_and_self_check_flags_mutants() {
        let out = dispatch(&args("lint --self-check")).expect("lint must pass");
        assert!(out.contains("obligations proved across all shipped kernels"), "{out}");
        for kernel in ["basic", "atomic", "tiled", "beam"] {
            assert!(out.contains(&format!("kernel `{kernel}`")), "{out}");
        }
        for mutant in [
            "mutant-strided-load",
            "mutant-bank-conflict",
            "mutant-off-by-one",
            "mutant-divergent-barrier",
        ] {
            assert!(out.contains(&format!("self-check `{mutant}`")), "{out}");
        }
    }

    #[test]
    fn boolean_switches_need_no_value() {
        // Trailing switch, switch followed by another flag, explicit value.
        let a = args("build --strict --input x.wkv --degrade false --verbose");
        assert!(a.get("strict", false).unwrap());
        assert!(!a.get("degrade", true).unwrap());
        assert!(a.get("verbose", false).unwrap());
        assert_eq!(a.require("input").unwrap(), "x.wkv");
        // A junk value is still a parse error, not silently true.
        let a = args("build --strict maybe");
        assert!(a.get("strict", false).is_err());
    }

    #[test]
    fn generate_build_recall_stats_roundtrip() {
        let vecs = tmp("roundtrip.wkv");
        let graph = tmp("roundtrip.wkk");
        let out = dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 300 --dim 24 --intrinsic 4 --seed 3"
        )))
        .unwrap();
        assert!(out.contains("300"));

        let out = dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 6 --trees 4 --leaf 24 --explore 1"
        )))
        .unwrap();
        assert!(out.contains("6-NN graph"));

        let out = dispatch(&args(&format!("recall --input {vecs} --graph {graph}"))).unwrap();
        let r: f64 = out.split('=').nth(1).unwrap().trim().parse().unwrap();
        assert!(r > 0.7, "{out}");

        let out = dispatch(&args(&format!("stats --graph {graph}"))).unwrap();
        assert!(out.contains("points 300"));

        let out = dispatch(&args(&format!("info --input {vecs}"))).unwrap();
        assert!(out.contains("300 points x 24 dims"));

        std::fs::remove_file(&vecs).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn quantized_builds_via_cli() {
        let vecs = tmp("quant.wkv");
        let graph = tmp("quant.wkk");
        dispatch(&args(&format!(
            "generate --out {vecs} --kind clusters --n 300 --dim 16 --seed 9"
        )))
        .unwrap();
        let out = dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 6 --trees 4 --leaf 24 --quant pq --pq-m 8"
        )))
        .unwrap();
        assert!(out.contains("pq m=8"), "{out}");
        assert!(out.contains("8 B/point vs 64 B/point"), "{out}");
        let out = dispatch(&args(&format!("recall --input {vecs} --graph {graph}"))).unwrap();
        let r: f64 = out.split('=').nth(1).unwrap().trim().parse().unwrap();
        assert!(r > 0.5, "pq build recall too low: {out}");

        let out = dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 6 --trees 4 --leaf 24 --quant sq8"
        )))
        .unwrap();
        assert!(out.contains("sq8: 16 B/point"), "{out}");

        // Typed rejections: unknown mode, quantized sim build.
        let e = dispatch(&args(&format!("build --input {vecs} --out {graph} --quant nope")))
            .unwrap_err();
        assert!(e.contains("unknown --quant"), "{e}");
        let e =
            dispatch(&args(&format!("build --input {vecs} --out {graph} --quant pq --device sim")))
                .unwrap_err();
        assert!(e.contains("native-only"), "{e}");
        std::fs::remove_file(&vecs).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn simulated_build_via_cli() {
        let vecs = tmp("sim.wkv");
        let graph = tmp("sim.wkk");
        dispatch(&args(&format!("generate --out {vecs} --kind uniform --n 80 --dim 8"))).unwrap();
        let out = dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 4 --trees 2 --leaf 16 --device sim"
        )))
        .unwrap();
        assert!(out.contains("simulated"));
        assert!(out.contains("0 retries"), "{out}");
        std::fs::remove_file(&vecs).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn fault_injected_build_recovers_and_reports() {
        let vecs = tmp("fault.wkv");
        let graph = tmp("fault.wkk");
        dispatch(&args(&format!("generate --out {vecs} --kind uniform --n 60 --dim 6"))).unwrap();
        // Default (degraded) policy rides through an injected transient
        // launch failure and reports the retry in the event summary.
        let out = dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 4 --trees 2 --leaf 16 \
             --device sim --degrade --fail-launch 0"
        )))
        .unwrap();
        assert!(out.contains("1 retries"), "{out}");
        // The same fault under --strict is a typed error, not a panic.
        let err = dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 4 --trees 2 --leaf 16 \
             --device sim --strict --fail-launch 0"
        )))
        .unwrap_err();
        assert!(err.contains("launch failed"), "{err}");
        // The two policies are mutually exclusive.
        assert!(dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --device sim --strict --degrade"
        )))
        .is_err());
        std::fs::remove_file(&vecs).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn audit_subcommand_reports_verdicts() {
        let vecs = tmp("audit.wkv");
        let graph = tmp("audit.wkk");
        dispatch(&args(&format!("generate --out {vecs} --kind uniform --n 50 --dim 5"))).unwrap();
        dispatch(&args(&format!("build --input {vecs} --out {graph} --k 4 --trees 3 --leaf 12")))
            .unwrap();
        // A freshly built graph audits clean, with and without the vectors.
        let out = dispatch(&args(&format!("audit --graph {graph}"))).unwrap();
        assert!(out.starts_with("OK"), "{out}");
        let out = dispatch(&args(&format!("audit --graph {graph} --input {vecs}"))).unwrap();
        assert!(out.starts_with("OK"), "{out}");
        // Corrupt one stored distance: structural audit still passes, the
        // distance-verifying audit catches it.
        let mut lists = io::load_knn(Path::new(&graph)).unwrap();
        lists[3][0].dist += 100.0;
        io::save_knn(&lists, Path::new(&graph)).unwrap();
        let out = dispatch(&args(&format!("audit --graph {graph} --input {vecs}"))).unwrap();
        assert!(out.starts_with("CORRUPT"), "{out}");
        assert!(out.contains("1 corrupted points"), "{out}");
        std::fs::remove_file(&vecs).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn sanitize_sweep_is_clean_and_self_check_arms() {
        let out = dispatch(&args("sanitize --seed 11")).unwrap();
        assert!(out.contains("kernel configs clean"), "{out}");
        assert!(out.contains("intentional race detected"), "{out}");
    }

    #[cfg(not(feature = "sanitize"))]
    #[test]
    fn sanitize_without_the_feature_is_a_clean_error() {
        let err = dispatch(&args("sanitize")).unwrap_err();
        assert!(err.contains("--features sanitize"), "{err}");
    }

    #[cfg(feature = "race")]
    #[test]
    fn race_protocols_are_clean_and_self_check_arms() {
        let out = dispatch(&args("race")).unwrap();
        assert!(out.contains("protocols clean"), "{out}");
        for protocol in [
            "epoch-pin-publish-retire",
            "mutator-restore-vs-queries",
            "ticket-drop-worker-lost",
            "shed-controller-brownout",
            "supervisor-respawn-under-panic",
        ] {
            assert!(out.contains(protocol), "{out}");
        }
        let out = dispatch(&args("race --self-check")).unwrap();
        assert!(out.contains("seeded mutants flagged (detector armed)"), "{out}");
        for mutant in [
            "skipped-publish-fence",
            "relaxed-for-acquire",
            "dropped-reply-guard",
            "inverted-lock-order",
        ] {
            assert!(out.contains(mutant), "{out}");
        }
    }

    #[cfg(not(feature = "race"))]
    #[test]
    fn race_without_the_feature_is_a_clean_error() {
        let err = dispatch(&args("race")).unwrap_err();
        assert!(err.contains("--features race"), "{err}");
    }

    #[test]
    fn bad_inputs_are_reported_not_panicked() {
        assert!(dispatch(&args("recall --input /no/such.wkv --graph /no/such.wkk")).is_err());
        assert!(dispatch(&args("generate --out /no/such/dir/x.wkv")).is_err());
        assert!(dispatch(&args("frobnicate")).is_err());
        assert!(dispatch(&args("build --input x --out y --device warp9")).is_err());
        assert!(dispatch(&args("help")).unwrap().contains("wknng-cli"));
    }
}

#[cfg(test)]
mod extended_cli_tests {
    use super::*;

    fn args(line: &str) -> Args {
        let argv: Vec<String> = line.split_whitespace().map(|s| s.to_string()).collect();
        Args::parse(&argv).expect("parse")
    }

    fn tmp(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("wknng-cli-ext-{name}-{}", std::process::id()));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn search_and_extend_roundtrip() {
        let vecs = tmp("a.wkv");
        let graph = tmp("a.wkk");
        let more = tmp("b.wkv");
        let vecs2 = tmp("c.wkv");
        let graph2 = tmp("c.wkk");

        dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 250 --dim 16 --intrinsic 3 --seed 4"
        )))
        .unwrap();
        dispatch(&args(&format!("build --input {vecs} --out {graph} --k 6 --trees 4 --leaf 16")))
            .unwrap();

        // Searching with an indexed point finds it at distance ~0 first.
        let out =
            dispatch(&args(&format!("search --input {vecs} --graph {graph} --query 7 --k 3")))
                .unwrap();
        assert!(out.starts_with("query 7: [7(0.0000)"), "{out}");
        // Out-of-range query id is a clean error.
        assert!(dispatch(&args(&format!("search --input {vecs} --graph {graph} --query 9999")))
            .is_err());

        dispatch(&args(&format!(
            "generate --out {more} --kind manifold --n 40 --dim 16 --intrinsic 3 --seed 5"
        )))
        .unwrap();
        let out = dispatch(&args(&format!(
            "extend --input {vecs} --graph {graph} --new {more} --out-vectors {vecs2} --out-graph {graph2}"
        )))
        .unwrap();
        assert!(out.contains("250 + 40"));
        let out = dispatch(&args(&format!("stats --graph {graph2}"))).unwrap();
        assert!(out.contains("points 290"), "{out}");

        for f in [&vecs, &graph, &more, &vecs2, &graph2] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_replays_a_query_file() {
        let vecs = tmp("srv.wkv");
        let graph = tmp("srv.wkk");
        let queries = tmp("srv-q.wkv");
        dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 200 --dim 16 --intrinsic 3 --seed 8"
        )))
        .unwrap();
        dispatch(&args(&format!("build --input {vecs} --out {graph} --k 8 --trees 4 --leaf 24")))
            .unwrap();
        dispatch(&args(&format!(
            "generate --out {queries} --kind manifold --n 50 --dim 16 --intrinsic 3 --seed 9"
        )))
        .unwrap();
        // A tiny queue forces the replayer through the Overloaded path.
        let out = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} \
             --k 5 --shards 2 --batch 8 --capacity 16 --augment"
        )))
        .unwrap();
        assert!(out.contains("replayed 50 queries"), "{out}");
        assert!(out.contains("served 50"), "{out}");
        assert!(out.contains("p50"), "{out}");
        // Dimension mismatch between index and queries is a clean error.
        let err =
            dispatch(&args(&format!("serve --input {vecs} --graph {graph} --queries {graph}")));
        assert!(err.is_err());
        for f in [&vecs, &graph, &queries] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_resilience_flags_inject_chaos_and_report_it() {
        let vecs = tmp("srv-r.wkv");
        let graph = tmp("srv-r.wkk");
        let queries = tmp("srv-r-q.wkv");
        dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 200 --dim 16 --intrinsic 3 --seed 18"
        )))
        .unwrap();
        dispatch(&args(&format!("build --input {vecs} --out {graph} --k 8 --trees 4 --leaf 24")))
            .unwrap();
        dispatch(&args(&format!(
            "generate --out {queries} --kind manifold --n 40 --dim 16 --intrinsic 3 --seed 19"
        )))
        .unwrap();
        // Batch 0 panics (queries come back WorkerLost, shard respawns),
        // batch 1 is poisoned, batch 3 stalls briefly; the replay still
        // completes and the report shows the restart.
        let out = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --k 5 --batch 8 \
             --deadline-ms 5000 --shed --chaos panic@0,poison@1,stall@3:5ms"
        )))
        .unwrap();
        assert!(out.contains("degraded)"), "{out}");
        assert!(out.contains("worker restarts 1"), "{out}");
        assert!(out.contains("resilience:"), "{out}");
        // A malformed chaos spec is a clean flag error.
        let err = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --chaos panic@x"
        )));
        assert!(err.unwrap_err().contains("--chaos"), "bad spec must name the flag");
        for f in [&vecs, &graph, &queries] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_snapshot_out_round_trips_the_published_epoch() {
        let vecs = tmp("snap.wkv");
        let graph = tmp("snap.wkk");
        let queries = tmp("snap-q.wkv");
        let more = tmp("snap-new.wkv");
        let base = tmp("snap-out");
        dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 200 --dim 16 --intrinsic 3 --seed 38"
        )))
        .unwrap();
        dispatch(&args(&format!("build --input {vecs} --out {graph} --k 8 --trees 6 --leaf 32")))
            .unwrap();
        dispatch(&args(&format!(
            "generate --out {queries} --kind manifold --n 30 --dim 16 --intrinsic 3 --seed 39"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "generate --out {more} --kind manifold --n 20 --dim 16 --intrinsic 3 --seed 40"
        )))
        .unwrap();
        // Mutate under load, then snapshot the final epoch to disk.
        let out = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --k 5 --batch 8 \
             --mutate --insert {more} --snapshot-out {base}"
        )))
        .unwrap();
        assert!(out.contains(&format!("220 live points) -> {base}.wkv")), "{out}");
        // The snapshot is a loadable, servable index pair: replay against it
        // and audit it with stored distances verified.
        let out = dispatch(&args(&format!(
            "serve --input {base}.wkv --graph {base}.wkk --queries {queries} --k 5"
        )))
        .unwrap();
        assert!(out.contains("replayed 30 queries"), "{out}");
        let out = dispatch(&args(&format!("audit --graph {base}.wkk --input {base}.wkv"))).unwrap();
        assert!(out.starts_with("OK"), "{out}");
        for f in [vecs, graph, queries, more, format!("{base}.wkv"), format!("{base}.wkk")] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn bench_lists_registry_and_runs_selected_experiments() {
        let out = dispatch(&args("bench --list")).unwrap();
        for id in [
            "e1",
            "e21",
            "build-native",
            "build-native-simd",
            "serve-load",
            "recall-frontier",
            "device-cycles",
            "recovery-time",
        ] {
            assert!(out.contains(id), "missing {id}: {out}");
        }
        // Registry-dispatched experiment run, same path as `reproduce`.
        let out = dispatch(&args("bench --only e1 --quick")).unwrap();
        assert!(out.contains("E1"), "{out}");
        let err = dispatch(&args("bench --only e99 --quick")).unwrap_err();
        assert!(err.contains("unknown experiment id 'e99'"), "{err}");
        assert!(err.contains("e21"), "error must list known ids: {err}");
    }

    #[test]
    fn bench_suite_writes_a_snapshot_and_compare_gates_regressions() {
        let snap = tmp("bench.json");
        let bad = tmp("bench-bad.json");
        // A one-job smoke run keeps this test fast; the full-suite path is
        // covered by the runner's own tests.
        let out = dispatch(&args(&format!(
            "bench --profile smoke --jobs device-cycles --repeats 2 --out {snap}"
        )))
        .unwrap();
        assert!(out.contains("tiled_cycles"), "{out}");
        assert!(out.contains(&format!("wrote {snap}")), "{out}");
        // Self-comparison is all-flat and passes.
        let out = dispatch(&args(&format!("bench --compare {snap} --against {snap}"))).unwrap();
        assert!(out.contains("no gated regression"), "{out}");
        // Perturb one deterministic median (prefix a digit: ~10x larger on a
        // lower-is-better metric) — the gate must trip with a nonzero exit.
        let text = std::fs::read_to_string(&snap).unwrap();
        let perturbed: Vec<String> = text
            .lines()
            .map(|l| {
                if l.contains("\"metric\": \"tiled_cycles\"") {
                    l.replacen("\"median\": ", "\"median\": 9", 1)
                } else {
                    l.to_string()
                }
            })
            .collect();
        std::fs::write(&bad, perturbed.join("\n")).unwrap();
        let err = dispatch(&args(&format!("bench --compare {snap} --against {bad}"))).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("tiled_cycles"), "{err}");
        // The JSON rendering carries the same verdict machine-readably.
        let err =
            dispatch(&args(&format!("bench --compare {snap} --against {bad} --json"))).unwrap_err();
        assert!(err.contains("\"blocking\": true"), "{err}");
        for f in [&snap, &bad] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_data_dir_cold_warm_round_trip_and_fsck() {
        let vecs = tmp("dur.wkv");
        let graph = tmp("dur.wkk");
        let queries = tmp("dur-q.wkv");
        let more = tmp("dur-new.wkv");
        let dir = tmp("dur-data");
        std::fs::remove_dir_all(&dir).ok();
        dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 250 --dim 16 --intrinsic 3 --seed 48"
        )))
        .unwrap();
        dispatch(&args(&format!("build --input {vecs} --out {graph} --k 8 --trees 6 --leaf 32")))
            .unwrap();
        dispatch(&args(&format!(
            "generate --out {queries} --kind manifold --n 30 --dim 16 --intrinsic 3 --seed 49"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "generate --out {more} --kind manifold --n 20 --dim 16 --intrinsic 3 --seed 50"
        )))
        .unwrap();
        // Cold start: --data-dir implies --mutate; a cadence of 3 leaves the
        // 4th insert batch in the WAL tail for the warm start to replay.
        let out = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --k 5 --batch 8 \
             --insert {more} --data-dir {dir} --checkpoint-every 3"
        )))
        .unwrap();
        assert!(out.contains("inserted 20 points (0 batches refused)"), "{out}");
        assert!(out.contains("wal appends 4"), "{out}");
        assert!(out.contains("checkpoints 1"), "{out}");
        // Warm start: no --input/--graph, the index comes from the data dir.
        let out =
            dispatch(&args(&format!("serve --queries {queries} --k 5 --batch 8 --data-dir {dir}")))
                .unwrap();
        assert!(out.contains("recovered generation 1"), "{out}");
        assert!(out.contains("replayed 1 ops"), "{out}");
        assert!(out.contains("replayed 30 queries"), "{out}");
        // The post-recovery directory deep-verifies clean.
        let out = dispatch(&args(&format!("fsck --dir {dir}"))).unwrap();
        assert!(out.contains("fsck:"), "{out}");
        // Seeded corruption must be flagged with a nonzero exit: flip one
        // payload byte in the newest generation's graph snapshot.
        let gens = crate::serve::list_generations(Path::new(&dir));
        let victim = format!("{dir}/ckpt-{:08}/graph.wkk", gens.last().unwrap());
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&victim, bytes).unwrap();
        let err = dispatch(&args(&format!("fsck --dir {dir}"))).unwrap_err();
        assert!(err.contains("CORRUPT"), "{err}");
        for f in [&vecs, &graph, &queries, &more] {
            std::fs::remove_file(f).ok();
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_mutate_inserts_under_load_and_gates_on_recall() {
        let vecs = tmp("srv-m.wkv");
        let graph = tmp("srv-m.wkk");
        let queries = tmp("srv-m-q.wkv");
        let more = tmp("srv-m-new.wkv");
        dispatch(&args(&format!(
            "generate --out {vecs} --kind manifold --n 300 --dim 16 --intrinsic 3 --seed 28"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "build --input {vecs} --out {graph} --k 10 --trees 8 --leaf 32 --explore 2"
        )))
        .unwrap();
        dispatch(&args(&format!(
            "generate --out {queries} --kind manifold --n 40 --dim 16 --intrinsic 3 --seed 29"
        )))
        .unwrap();
        // 10% of the index size, same distribution, inserted mid-replay.
        dispatch(&args(&format!(
            "generate --out {more} --kind manifold --n 30 --dim 16 --intrinsic 3 --seed 30"
        )))
        .unwrap();
        let out = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --k 5 --batch 8 \
             --mutate --insert {more} --assert-recall 0.9"
        )))
        .unwrap();
        assert!(out.contains("replayed 40 queries"), "{out}");
        assert!(out.contains("inserted 30 points (0 batches refused)"), "{out}");
        assert!(out.contains("final-epoch recall@5"), "{out}");
        assert!(out.contains("mutation: epoch 4 / applied 30 / swaps 4"), "{out}");
        // --insert without --mutate is a clean flag error.
        let err = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --insert {more}"
        )));
        assert!(err.unwrap_err().contains("--mutate"), "flag dependency must be named");
        // An unreachable recall bound fails loudly instead of passing.
        let err = dispatch(&args(&format!(
            "serve --input {vecs} --graph {graph} --queries {queries} --k 5 \
             --mutate --insert {more} --assert-recall 1.01"
        )));
        assert!(err.unwrap_err().contains("below the asserted bound"), "gate must trip");
        for f in [&vecs, &graph, &queries, &more] {
            std::fs::remove_file(f).ok();
        }
    }
}
