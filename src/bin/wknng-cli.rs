//! Command-line front end for the w-KNNG library; see `wknng::cli::USAGE`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = wknng::cli::Args::parse(&argv).and_then(|args| wknng::cli::dispatch(&args));
    match result {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
